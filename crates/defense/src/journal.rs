//! The crash-consistency write-ahead journal.
//!
//! Every monitor event and defender decision is appended to a framed,
//! checksummed log *before* the in-memory state that depends on it is
//! considered durable. After a crash, [`Journal::reopen`] scans the log,
//! drops any torn tail (a frame the dying process never finished
//! writing), and hands the surviving records to the recovery path, which
//! replays them on top of the last checkpoint.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! header:  magic "JGREWAL1" | schema version u32 | base sequence u64
//! frame:   payload length u32 | serde_json payload | FNV-1a-64 checksum
//! ```
//!
//! The sequence number of a frame is implicit: `base + index`. Compaction
//! (after a checkpoint) rewrites the journal to an empty log whose base
//! is the checkpoint's sequence, so replay work stays bounded by the
//! checkpoint interval. The same discipline as the analysis cache applies
//! throughout: bounds-checked decoding, checksum verification per region,
//! and atomic whole-file replacement — corrupt input degrades to a
//! shorter log, never to a panic.

use std::cell::RefCell;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

use jgre_art::JgrEventKind;
use jgre_sim::{Pid, SimTime, Uid};
use serde::{Deserialize, Serialize};

use crate::DefenseError;

/// Magic prefix of a journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"JGREWAL1";
/// Journal schema version; bump on any layout change.
pub const JOURNAL_SCHEMA_VERSION: u32 = 1;
/// Header: magic + version + base sequence.
const HEADER_LEN: usize = 8 + 4 + 8;
/// Sanity bound on a single frame's payload (a record is ~100 bytes).
const MAX_FRAME_LEN: u32 = 1 << 20;

/// FNV-1a 64-bit checksum, the same region-checksum primitive the
/// analysis cache uses (duplicated here: the defense crate models the
/// on-device daemon and must not depend on host-side tooling).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One durable record: everything the defender needs to rebuild its
/// in-memory state after a crash.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// One observed JGR operation, as the monitor saw it (including the
    /// fault layer's verdict on whether/how the timestamp was logged, so
    /// replay does not re-draw from the fault RNG).
    Event {
        /// Process whose runtime performed the operation.
        pid: Pid,
        /// Add or remove.
        kind: JgrEventKind,
        /// Virtual time of the operation.
        at: SimTime,
        /// The timestamp as the (possibly faulty) journal recorded it;
        /// `None` when the fault layer lost it.
        logged_at: Option<SimTime>,
        /// Table size immediately after the operation.
        table_size: usize,
    },
    /// A completed detection + recovery pass (the state transition is the
    /// monitor reset plus the cooldown stamp).
    Decision {
        /// The process whose alarm fired.
        victim: Pid,
        /// When the pass finished (the cooldown stamp).
        completed_at: SimTime,
        /// Apps killed, in order.
        killed: Vec<Uid>,
    },
}

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum PersistError {
    /// The backing store failed.
    Io(io::Error),
    /// The defender configuration was invalid.
    Config(DefenseError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "state store error: {e}"),
            PersistError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<DefenseError> for PersistError {
    fn from(e: DefenseError) -> Self {
        PersistError::Config(e)
    }
}

/// Byte-level backing store for the journal and the checkpoint.
///
/// Two implementations ship: [`MemoryStore`] (the chaos matrix and the
/// property tests, infallible) and [`DirStore`] (real files, atomic
/// checkpoint replacement via temp-file + rename).
pub trait StateStore: fmt::Debug {
    /// Reads the whole journal (empty if none exists yet).
    fn load_journal(&self) -> io::Result<Vec<u8>>;
    /// Appends raw bytes to the journal.
    fn append_journal(&self, bytes: &[u8]) -> io::Result<()>;
    /// Atomically replaces the journal (compaction, torn-tail truncation).
    fn replace_journal(&self, bytes: &[u8]) -> io::Result<()>;
    /// Reads the checkpoint, `None` if none was ever written.
    fn load_checkpoint(&self) -> io::Result<Option<Vec<u8>>>;
    /// Atomically replaces the checkpoint.
    fn store_checkpoint(&self, bytes: &[u8]) -> io::Result<()>;
}

#[derive(Debug, Default)]
struct MemoryInner {
    journal: Vec<u8>,
    checkpoint: Option<Vec<u8>>,
}

/// An in-memory [`StateStore`]. Clones share the same backing bytes, so
/// a test can keep a handle, drop the defender, and resume a new one
/// from the survivor.
#[derive(Debug, Clone, Default)]
pub struct MemoryStore {
    inner: Rc<RefCell<MemoryInner>>,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the current journal bytes (for corruption tests).
    pub fn journal_bytes(&self) -> Vec<u8> {
        self.inner.borrow().journal.clone()
    }

    /// A copy of the current checkpoint bytes, if any.
    pub fn checkpoint_bytes(&self) -> Option<Vec<u8>> {
        self.inner.borrow().checkpoint.clone()
    }

    /// Overwrites the journal bytes verbatim (simulating torn writes or
    /// bit rot in tests).
    pub fn set_journal_bytes(&self, bytes: Vec<u8>) {
        self.inner.borrow_mut().journal = bytes;
    }

    /// Overwrites the checkpoint bytes verbatim.
    pub fn set_checkpoint_bytes(&self, bytes: Option<Vec<u8>>) {
        self.inner.borrow_mut().checkpoint = bytes;
    }
}

impl StateStore for MemoryStore {
    fn load_journal(&self) -> io::Result<Vec<u8>> {
        Ok(self.inner.borrow().journal.clone())
    }

    fn append_journal(&self, bytes: &[u8]) -> io::Result<()> {
        self.inner.borrow_mut().journal.extend_from_slice(bytes);
        Ok(())
    }

    fn replace_journal(&self, bytes: &[u8]) -> io::Result<()> {
        self.inner.borrow_mut().journal = bytes.to_vec();
        Ok(())
    }

    fn load_checkpoint(&self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.inner.borrow().checkpoint.clone())
    }

    fn store_checkpoint(&self, bytes: &[u8]) -> io::Result<()> {
        self.inner.borrow_mut().checkpoint = Some(bytes.to_vec());
        Ok(())
    }
}

/// A directory-backed [`StateStore`]: `wal.bin` + `checkpoint.bin`.
/// Rewrites go through a temp file and an atomic rename, so a crash
/// mid-rewrite leaves either the old file or the new one, never a mix.
#[derive(Debug)]
pub struct DirStore {
    journal: PathBuf,
    checkpoint: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) `dir` as a state store.
    ///
    /// # Errors
    ///
    /// Any error creating the directory.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Self {
            journal: dir.join("wal.bin"),
            checkpoint: dir.join("checkpoint.bin"),
        })
    }

    fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)
    }
}

impl StateStore for DirStore {
    fn load_journal(&self) -> io::Result<Vec<u8>> {
        match fs::read(&self.journal) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn append_journal(&self, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.journal)?;
        f.write_all(bytes)
    }

    fn replace_journal(&self, bytes: &[u8]) -> io::Result<()> {
        Self::atomic_write(&self.journal, bytes)
    }

    fn load_checkpoint(&self) -> io::Result<Option<Vec<u8>>> {
        match fs::read(&self.checkpoint) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn store_checkpoint(&self, bytes: &[u8]) -> io::Result<()> {
        Self::atomic_write(&self.checkpoint, bytes)
    }
}

/// What [`Journal::reopen`] found.
#[derive(Debug)]
pub struct ReopenReport {
    /// Sequence number of the first surviving record.
    pub base_seq: u64,
    /// The surviving records, with their sequence numbers, in order.
    pub records: Vec<(u64, JournalRecord)>,
    /// Bytes dropped from a torn or corrupt tail.
    pub truncated_bytes: u64,
    /// Set when the whole file had to be discarded (bad magic, unknown
    /// schema version, or a short header).
    pub reset_reason: Option<&'static str>,
}

/// The append-side handle on the write-ahead journal.
#[derive(Debug)]
pub struct Journal {
    store: Rc<dyn StateStore>,
    next_seq: u64,
    records_since_compaction: u64,
    append_errors: u64,
}

fn header_bytes(base_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&JOURNAL_MAGIC);
    out.extend_from_slice(&JOURNAL_SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&base_seq.to_le_bytes());
    out
}

fn encode_frame(record: &JournalRecord) -> Vec<u8> {
    let payload = serde_json::to_vec(record).expect("journal records always serialize");
    let mut out = Vec::with_capacity(4 + payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out
}

impl Journal {
    /// Starts a fresh, empty journal at sequence 0 (a first install).
    ///
    /// # Errors
    ///
    /// Any error writing the header to the store.
    pub fn create(store: Rc<dyn StateStore>) -> io::Result<Self> {
        store.replace_journal(&header_bytes(0))?;
        Ok(Self {
            store,
            next_seq: 0,
            records_since_compaction: 0,
            append_errors: 0,
        })
    }

    /// Reopens an existing journal after a crash: verifies the header,
    /// scans the frames, checksums each, and truncates the store to the
    /// longest clean prefix. A file with a bad magic/version/short header
    /// is discarded wholesale and restarted at sequence 0.
    ///
    /// # Errors
    ///
    /// Only store I/O errors; corrupt *content* never errors, it
    /// truncates.
    pub fn reopen(store: Rc<dyn StateStore>) -> io::Result<(Self, ReopenReport)> {
        let bytes = store.load_journal()?;
        let reset = |reason| -> io::Result<(Self, ReopenReport)> {
            store.replace_journal(&header_bytes(0))?;
            Ok((
                Self {
                    store: store.clone(),
                    next_seq: 0,
                    records_since_compaction: 0,
                    append_errors: 0,
                },
                ReopenReport {
                    base_seq: 0,
                    records: Vec::new(),
                    truncated_bytes: bytes.len() as u64,
                    reset_reason: Some(reason),
                },
            ))
        };
        if bytes.len() < HEADER_LEN {
            return reset("short header");
        }
        if bytes[..8] != JOURNAL_MAGIC {
            return reset("bad magic");
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != JOURNAL_SCHEMA_VERSION {
            return reset("unknown schema version");
        }
        let base_seq = u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8 bytes"));
        let mut records = Vec::new();
        let mut offset = HEADER_LEN;
        while let Some(len_bytes) = bytes.get(offset..offset + 4) {
            let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes"));
            if len > MAX_FRAME_LEN {
                break;
            }
            let body_end = offset + 4 + len as usize;
            let frame_end = body_end + 8;
            if frame_end > bytes.len() {
                break;
            }
            let payload = &bytes[offset + 4..body_end];
            let stored = u64::from_le_bytes(bytes[body_end..frame_end].try_into().expect("8"));
            if checksum(payload) != stored {
                break;
            }
            let Ok(record) = serde_json::from_slice::<JournalRecord>(payload) else {
                break;
            };
            records.push((base_seq + records.len() as u64, record));
            offset = frame_end;
        }
        let truncated_bytes = (bytes.len() - offset) as u64;
        if truncated_bytes > 0 {
            store.replace_journal(&bytes[..offset])?;
        }
        let next_seq = base_seq + records.len() as u64;
        Ok((
            Self {
                store,
                next_seq,
                records_since_compaction: records.len() as u64,
                append_errors: 0,
            },
            ReopenReport {
                base_seq,
                records,
                truncated_bytes,
                reset_reason: None,
            },
        ))
    }

    /// A handle on `store` that performs no I/O until first use — a
    /// placeholder while recovery rebuilds the real journal.
    pub(crate) fn detached(store: Rc<dyn StateStore>) -> Self {
        Self {
            store,
            next_seq: 0,
            records_since_compaction: 0,
            append_errors: 0,
        }
    }

    /// Appends one record and returns its sequence number. Store failures
    /// are counted, not propagated — the defender keeps running with a
    /// lossy journal rather than dying over it.
    pub fn append(&mut self, record: &JournalRecord) -> u64 {
        let seq = self.next_seq;
        if self.store.append_journal(&encode_frame(record)).is_err() {
            self.append_errors += 1;
        }
        self.next_seq += 1;
        self.records_since_compaction += 1;
        seq
    }

    /// Appends a deliberately torn frame — the write that was in flight
    /// when the process died. Reopen must drop exactly this tail. The
    /// sequence number does not advance: the record never completed.
    pub fn append_torn_frame(&mut self) {
        let frame = encode_frame(&JournalRecord::Decision {
            victim: Pid::new(0),
            completed_at: SimTime::ZERO,
            killed: Vec::new(),
        });
        let cut = frame.len().saturating_sub(6).max(4);
        if self.store.append_journal(&frame[..cut]).is_err() {
            self.append_errors += 1;
        }
    }

    /// Rewrites the journal to an empty log based at `base_seq` (called
    /// right after a checkpoint covering everything before `base_seq`).
    pub fn compact(&mut self, base_seq: u64) {
        if self.store.replace_journal(&header_bytes(base_seq)).is_err() {
            self.append_errors += 1;
            return;
        }
        self.next_seq = base_seq;
        self.records_since_compaction = 0;
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records appended since the last compaction — the replay bound.
    pub fn records_since_compaction(&self) -> u64 {
        self.records_since_compaction
    }

    /// Store failures swallowed so far.
    pub fn append_errors(&self) -> u64 {
        self.append_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64) -> JournalRecord {
        JournalRecord::Event {
            pid: Pid::new(42),
            kind: JgrEventKind::Add,
            at: SimTime::from_micros(seq * 10),
            logged_at: Some(SimTime::from_micros(seq * 10)),
            table_size: seq as usize,
        }
    }

    #[test]
    fn append_reopen_round_trips() {
        let store = MemoryStore::new();
        let mut j = Journal::create(Rc::new(store.clone())).unwrap();
        for i in 0..5 {
            assert_eq!(j.append(&event(i)), i);
        }
        let (j2, report) = Journal::reopen(Rc::new(store)).unwrap();
        assert_eq!(report.records.len(), 5);
        assert_eq!(report.truncated_bytes, 0);
        assert!(report.reset_reason.is_none());
        assert_eq!(report.records[3].0, 3);
        assert_eq!(report.records[3].1, event(3));
        assert_eq!(j2.next_seq(), 5);
    }

    #[test]
    fn torn_tail_is_truncated_to_clean_prefix() {
        let store = MemoryStore::new();
        let mut j = Journal::create(Rc::new(store.clone())).unwrap();
        j.append(&event(0));
        j.append(&event(1));
        j.append_torn_frame();
        let before = store.journal_bytes().len();
        let (_, report) = Journal::reopen(Rc::new(store.clone())).unwrap();
        assert_eq!(report.records.len(), 2, "intact frames survive");
        assert!(report.truncated_bytes > 0);
        assert!(store.journal_bytes().len() < before);
        // A second reopen is clean: truncation converged.
        let (_, report) = Journal::reopen(Rc::new(store)).unwrap();
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.records.len(), 2);
    }

    #[test]
    fn bit_flip_in_payload_stops_the_scan_there() {
        let store = MemoryStore::new();
        let mut j = Journal::create(Rc::new(store.clone())).unwrap();
        for i in 0..4 {
            j.append(&event(i));
        }
        let mut bytes = store.journal_bytes();
        // Flip a byte inside the third frame's payload.
        let frame = encode_frame(&event(0)).len();
        let target = HEADER_LEN + 2 * frame + 10;
        bytes[target] ^= 0x40;
        store.set_journal_bytes(bytes);
        let (_, report) = Journal::reopen(Rc::new(store)).unwrap();
        assert_eq!(report.records.len(), 2, "records before the flip survive");
        assert!(report.truncated_bytes > 0);
    }

    #[test]
    fn bad_magic_resets_wholesale() {
        let store = MemoryStore::new();
        let mut j = Journal::create(Rc::new(store.clone())).unwrap();
        j.append(&event(0));
        let mut bytes = store.journal_bytes();
        bytes[0] = b'X';
        store.set_journal_bytes(bytes);
        let (j2, report) = Journal::reopen(Rc::new(store)).unwrap();
        assert_eq!(report.reset_reason, Some("bad magic"));
        assert!(report.records.is_empty());
        assert_eq!(j2.next_seq(), 0);
    }

    #[test]
    fn compaction_rebases_the_sequence() {
        let store = MemoryStore::new();
        let mut j = Journal::create(Rc::new(store.clone())).unwrap();
        for i in 0..7 {
            j.append(&event(i));
        }
        j.compact(7);
        assert_eq!(j.records_since_compaction(), 0);
        assert_eq!(j.append(&event(7)), 7);
        let (_, report) = Journal::reopen(Rc::new(store)).unwrap();
        assert_eq!(report.base_seq, 7);
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.records[0].0, 7);
    }

    #[test]
    fn dir_store_survives_a_host_process_restart() {
        let dir = std::env::temp_dir().join(format!("jgre-wal-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = Rc::new(DirStore::open(&dir).unwrap());
            let mut j = Journal::create(store).unwrap();
            j.append(&event(0));
            j.append(&event(1));
            j.append_torn_frame();
        }
        {
            let store = Rc::new(DirStore::open(&dir).unwrap());
            let (_, report) = Journal::reopen(store).unwrap();
            assert_eq!(report.records.len(), 2);
            assert!(report.truncated_bytes > 0);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
