//! The crash-consistent defender: WAL + checkpoint/restore + a
//! supervised restart loop.
//!
//! [`CrashConsistentDefender`] wraps [`JgreDefender`] so the defender
//! process itself may die — at any [`CrashPoint`] the fault layer's
//! `defender-crash` channel selects — and come back with its detection
//! state intact:
//!
//! 1. every monitor event and completed decision is appended to the
//!    write-ahead [`Journal`] before the in-memory state depending on it
//!    is considered durable;
//! 2. every `checkpoint_interval` records (and after every completed
//!    pass) the full state is checkpointed and the journal compacted, so
//!    replay is bounded;
//! 3. on a crash, a [`Supervisor`] (Android-`init` style: bounded
//!    consecutive restarts, exponential backoff) decides whether to
//!    restart; recovery reopens the journal (truncating the torn tail
//!    the dying process left), restores the newest valid checkpoint, and
//!    replays the suffix.
//!
//! Bookkeeping (journal appends, checkpoint writes) costs zero virtual
//! time; only the crash itself — supervisor backoff plus replay —
//! advances the clock. A run whose crash channel never fires is
//! therefore byte-identical to one driven by the raw [`JgreDefender`].
//!
//! [`CrashPoint`]: jgre_sim::CrashPoint

use std::cell::RefCell;
use std::rc::Rc;

use jgre_framework::{Supervisor, SupervisorConfig, System};
use jgre_sim::{CrashPoint, Pid, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{
    config_fingerprint, decode_checkpoint, encode_checkpoint, DefenderCheckpoint,
};
use crate::journal::{Journal, JournalRecord, PersistError, StateStore};
use crate::{DefenderConfig, DetectionOutcome, JgrMonitor, JgreDefender};

/// Tuning for the crash-consistent harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashConsistentConfig {
    /// The wrapped defender's configuration.
    pub defender: DefenderConfig,
    /// Restart policy.
    pub supervisor: SupervisorConfig,
    /// Journal records between periodic checkpoints — the replay bound.
    pub checkpoint_interval: u64,
    /// Modeled on-device cost of re-applying one journal record during
    /// recovery (the paper measures ~1 µs per monitored event; replay is
    /// a touch heavier for deserialize + apply).
    pub replay_cost: SimDuration,
}

impl Default for CrashConsistentConfig {
    fn default() -> Self {
        Self {
            defender: DefenderConfig::default(),
            supervisor: SupervisorConfig::default(),
            checkpoint_interval: 512,
            replay_cost: SimDuration::from_micros(2),
        }
    }
}

/// Counters describing how rough the defender's life has been.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Times the defender process died.
    pub crashes: u64,
    /// Times the supervisor restarted it.
    pub restarts: u64,
    /// Whether the supervisor hit its restart budget and stopped trying.
    pub gave_up: bool,
    /// Journal records re-applied across all recoveries.
    pub replayed_records: u64,
    /// Torn/corrupt journal bytes dropped on reopen.
    pub truncated_bytes: u64,
    /// Checkpoints successfully written.
    pub checkpoints_written: u64,
    /// Checkpoints rejected on recovery (bad checksum, stale schema,
    /// config mismatch) — recovery fell back to journal-only replay.
    pub checkpoints_rejected: u64,
    /// Virtual time spent crashed: supervisor backoff plus replay cost.
    pub recovery_delay_us: u64,
    /// Backing-store failures survived (loads and checkpoint writes).
    pub store_errors: u64,
}

/// A [`JgreDefender`] that survives its own death. See the module docs.
#[derive(Debug)]
pub struct CrashConsistentDefender {
    config: CrashConsistentConfig,
    store: Rc<dyn StateStore>,
    journal: Rc<RefCell<Journal>>,
    inner: Option<JgreDefender>,
    supervisor: Supervisor,
    stats: RecoveryStats,
}

impl CrashConsistentDefender {
    /// Installs the defense with a fresh journal on `store` (a first
    /// boot; any previous state on the store is discarded).
    ///
    /// # Errors
    ///
    /// [`PersistError::Config`] for an invalid defender configuration,
    /// [`PersistError::Io`] if the store cannot be initialised.
    pub fn install(
        system: &mut System,
        config: CrashConsistentConfig,
        store: Rc<dyn StateStore>,
    ) -> Result<Self, PersistError> {
        config.defender.validate()?;
        let journal = Rc::new(RefCell::new(Journal::create(store.clone())?));
        let monitor = Rc::new(JgrMonitor::new(
            config.defender.record_threshold,
            config.defender.trigger_threshold,
        )?);
        monitor.set_fault_layer(system.faults().clone());
        system.register_jgr_observer(monitor.clone());
        system.driver_mut().set_defense_recording(true);
        monitor.attach_journal(journal.clone());
        let defender = JgreDefender::from_parts(monitor, config.defender.clone(), Vec::new())?;
        defender.set_crash_channel(true);
        let supervisor = Supervisor::new(config.supervisor);
        Ok(Self {
            config,
            store,
            journal,
            inner: Some(defender),
            supervisor,
            stats: RecoveryStats::default(),
        })
    }

    /// Resumes the defense from whatever state `store` holds (the host
    /// process restarted): reopen the journal, restore the newest valid
    /// checkpoint, replay the suffix.
    ///
    /// # Errors
    ///
    /// [`PersistError::Config`] for an invalid defender configuration,
    /// [`PersistError::Io`] if the store cannot be read.
    pub fn resume(
        system: &mut System,
        config: CrashConsistentConfig,
        store: Rc<dyn StateStore>,
    ) -> Result<Self, PersistError> {
        config.defender.validate()?;
        let supervisor = Supervisor::new(config.supervisor);
        let journal = Rc::new(RefCell::new(Journal::detached(store.clone())));
        let mut this = Self {
            config,
            store,
            journal,
            inner: None,
            supervisor,
            stats: RecoveryStats::default(),
        };
        this.recover(system)?;
        Ok(this)
    }

    /// One defender tick. Polls the wrapped defender; on a crash-channel
    /// hit, runs the crash + supervised-recovery path and returns `None`
    /// (the pass died with the process).
    pub fn poll(&mut self, system: &mut System) -> Option<DetectionOutcome> {
        let result = self.inner.as_ref()?.try_poll(system);
        match result {
            Err(point) => {
                self.crash(system, point);
                None
            }
            Ok(Some(outcome)) => {
                // The decision append is itself a kill boundary: the
                // process can die with this very write in flight.
                if system.faults().crash_at(CrashPoint::JournalAppend) {
                    self.crash(system, CrashPoint::JournalAppend);
                    return None;
                }
                self.journal.borrow_mut().append(&JournalRecord::Decision {
                    victim: outcome.victim,
                    completed_at: system.now(),
                    killed: outcome.killed.clone(),
                });
                if system.faults().crash_at(CrashPoint::Checkpoint) {
                    self.crash(system, CrashPoint::Checkpoint);
                    return None;
                }
                self.write_checkpoint(system, 0);
                self.supervisor.on_healthy();
                Some(outcome)
            }
            Ok(None) => {
                if self.journal.borrow().records_since_compaction()
                    >= self.config.checkpoint_interval
                {
                    if system.faults().crash_at(CrashPoint::Checkpoint) {
                        self.crash(system, CrashPoint::Checkpoint);
                        return None;
                    }
                    self.write_checkpoint(system, 0);
                }
                self.supervisor.on_healthy();
                None
            }
        }
    }

    /// The defender process dies at `point`; the supervisor decides what
    /// happens next.
    fn crash(&mut self, system: &mut System, _point: CrashPoint) {
        self.stats.crashes += 1;
        // The write in flight when the process died: a torn tail that
        // reopen must truncate. Every crash exercises that path.
        self.journal.borrow_mut().append_torn_frame();
        // The dead process's observer registrations die with it.
        system.clear_jgr_observers();
        self.inner = None;
        match self.supervisor.on_crash() {
            None => {
                self.stats.gave_up = true;
            }
            Some(backoff) => {
                system.clock().advance(backoff);
                self.stats.recovery_delay_us += backoff.as_micros();
                self.stats.restarts += 1;
                if self.recover(system).is_err() {
                    self.stats.store_errors += 1;
                    self.stats.gave_up = true;
                }
            }
        }
    }

    /// Rebuilds the monitor + defender from the store: newest valid
    /// checkpoint (if any) plus a replay of the journal suffix.
    fn recover(&mut self, system: &mut System) -> Result<(), PersistError> {
        let fingerprint = config_fingerprint(&self.config.defender);
        let cp = match self.store.load_checkpoint() {
            Ok(Some(bytes)) => match decode_checkpoint(&bytes) {
                Ok(cp) if cp.config_fingerprint == fingerprint => Some(cp),
                Ok(_) | Err(_) => {
                    // Stale schema, bit rot, or a config change: the
                    // checkpoint is untrustworthy. Journal-only recovery.
                    self.stats.checkpoints_rejected += 1;
                    None
                }
            },
            Ok(None) => None,
            Err(_) => {
                self.stats.store_errors += 1;
                None
            }
        };
        let (journal, report) = Journal::reopen(self.store.clone())?;
        self.stats.truncated_bytes += report.truncated_bytes;
        let monitor = Rc::new(JgrMonitor::new(
            self.config.defender.record_threshold,
            self.config.defender.trigger_threshold,
        )?);
        let mut last_pass: std::collections::BTreeMap<Pid, SimTime> = Default::default();
        let mut start_seq = 0u64;
        if let Some(cp) = &cp {
            monitor.restore(&cp.monitor);
            last_pass.extend(cp.last_pass.iter().copied());
            start_seq = cp.journal_seq;
        }
        let mut replayed = 0u64;
        for (seq, record) in &report.records {
            if *seq < start_seq {
                continue;
            }
            replayed += 1;
            match record {
                JournalRecord::Event {
                    pid,
                    kind,
                    at,
                    logged_at,
                    table_size,
                } => monitor.replay_event(*pid, *kind, *at, *logged_at, *table_size),
                JournalRecord::Decision {
                    victim,
                    completed_at,
                    ..
                } => {
                    monitor.reset(*victim);
                    last_pass.insert(*victim, *completed_at);
                }
            }
        }
        self.stats.replayed_records += replayed;
        let replay_cost = self.config.replay_cost * replayed;
        system.clock().advance(replay_cost);
        self.stats.recovery_delay_us += replay_cost.as_micros();
        monitor.set_fault_layer(system.faults().clone());
        system.register_jgr_observer(monitor.clone());
        system.driver_mut().set_defense_recording(true);
        let defender = JgreDefender::from_parts(
            monitor,
            self.config.defender.clone(),
            last_pass.into_iter().collect(),
        )?;
        defender.set_crash_channel(true);
        self.journal = Rc::new(RefCell::new(journal));
        self.inner = Some(defender);
        // Checkpoint the rebuilt state and rebase the journal past
        // everything applied, so the *next* crash replays from here.
        self.write_checkpoint(system, start_seq);
        // Live events start journaling only once replay is done, so
        // nothing is journaled twice.
        if let Some(inner) = &self.inner {
            inner.monitor().attach_journal(self.journal.clone());
        }
        Ok(())
    }

    /// Writes a checkpoint of the current state and compacts the journal
    /// behind it. `seq_floor` keeps the sequence monotone when the
    /// journal itself had to be reset (bad header) while a checkpoint
    /// from a later epoch survived.
    fn write_checkpoint(&mut self, system: &System, seq_floor: u64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let journal_seq = self.journal.borrow().next_seq().max(seq_floor);
        let cp = DefenderCheckpoint {
            journal_seq,
            taken_at: system.now(),
            config_fingerprint: config_fingerprint(&self.config.defender),
            monitor: inner.monitor().snapshot(),
            last_pass: inner.last_pass_entries(),
        };
        match self.store.store_checkpoint(&encode_checkpoint(&cp)) {
            Ok(()) => {
                self.stats.checkpoints_written += 1;
                self.journal.borrow_mut().compact(journal_seq);
            }
            Err(_) => {
                // Without a durable checkpoint the journal stays the
                // only truth: do NOT compact.
                self.stats.store_errors += 1;
            }
        }
    }

    /// Forces a checkpoint now (benchmarks).
    pub fn checkpoint_now(&mut self, system: &System) {
        self.write_checkpoint(system, 0);
    }

    /// The harness's lifetime counters.
    pub fn stats(&self) -> RecoveryStats {
        let mut stats = self.stats;
        stats.gave_up = stats.gave_up || self.supervisor.gave_up();
        stats
    }

    /// The restart policy's state.
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// The wrapped defender, while it is alive.
    pub fn defender(&self) -> Option<&JgreDefender> {
        self.inner.as_ref()
    }

    /// Whether the defender process is currently alive.
    pub fn is_running(&self) -> bool {
        self.inner.is_some()
    }

    /// The active configuration.
    pub fn config(&self) -> &CrashConsistentConfig {
        &self.config
    }

    /// Journal records since the last compaction (the next crash's
    /// replay bound).
    pub fn records_since_compaction(&self) -> u64 {
        self.journal.borrow().records_since_compaction()
    }

    /// Journal append failures swallowed so far.
    pub fn journal_append_errors(&self) -> u64 {
        self.journal.borrow().append_errors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::MemoryStore;
    use jgre_framework::{CallOptions, SystemConfig};
    use jgre_sim::{FaultPlan, Uid};

    const CAP: usize = 4_000;

    fn scaled_config() -> CrashConsistentConfig {
        CrashConsistentConfig {
            defender: DefenderConfig {
                record_threshold: CAP / 12,
                trigger_threshold: CAP / 4,
                normal_level: CAP / 10,
                ..DefenderConfig::default()
            },
            checkpoint_interval: 64,
            ..CrashConsistentConfig::default()
        }
    }

    fn boot(faults: FaultPlan) -> System {
        System::boot_with(SystemConfig {
            seed: 7,
            jgr_capacity: Some(CAP),
            faults,
            ..SystemConfig::default()
        })
    }

    fn attack_until_detection(
        system: &mut System,
        defender: &mut CrashConsistentDefender,
        evil: Uid,
        budget: usize,
    ) -> Option<DetectionOutcome> {
        for _ in 0..budget {
            system
                .call_service(
                    evil,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            if let Some(d) = defender.poll(system) {
                return Some(d);
            }
            // A missing pid means the kill landed but the outcome died
            // with the process.
            system.pid_of(evil)?;
        }
        panic!("attack must trip the alarm within {budget} calls");
    }

    #[test]
    fn no_crash_channel_means_no_crashes_and_a_clean_detection() {
        let mut system = boot(FaultPlan::none());
        let store = Rc::new(MemoryStore::new());
        let mut defender =
            CrashConsistentDefender::install(&mut system, scaled_config(), store).unwrap();
        let evil = system.install_app("com.evil", []);
        let d = attack_until_detection(&mut system, &mut defender, evil, 8_000)
            .expect("no crash channel: the outcome is delivered");
        assert_eq!(d.killed, vec![evil]);
        let stats = defender.stats();
        assert_eq!(stats.crashes, 0);
        assert!(!stats.gave_up);
        assert!(stats.checkpoints_written >= 1, "decision checkpoint");
    }

    #[test]
    fn crash_at_poll_start_recovers_and_still_kills_the_attacker() {
        let plan = FaultPlan {
            crash: 1.0,
            crash_budget: 1,
            crash_point: Some(CrashPoint::PollStart),
            ..FaultPlan::none()
        };
        let mut system = boot(plan);
        let store = Rc::new(MemoryStore::new());
        let mut defender =
            CrashConsistentDefender::install(&mut system, scaled_config(), store).unwrap();
        let evil = system.install_app("com.evil", []);
        attack_until_detection(&mut system, &mut defender, evil, 8_000);
        assert!(system.pid_of(evil).is_none(), "attacker still dies");
        let stats = defender.stats();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.restarts, 1);
        assert!(!stats.gave_up);
        assert!(stats.truncated_bytes > 0, "every crash leaves a torn tail");
        assert!(stats.recovery_delay_us > 0);
        assert!(defender.is_running());
    }

    #[test]
    fn zero_restart_budget_gives_up_permanently() {
        let plan = FaultPlan {
            crash: 1.0,
            crash_budget: 1,
            crash_point: Some(CrashPoint::PollStart),
            ..FaultPlan::none()
        };
        let mut system = boot(plan);
        let store = Rc::new(MemoryStore::new());
        let config = CrashConsistentConfig {
            supervisor: SupervisorConfig {
                max_restarts: 0,
                ..SupervisorConfig::default()
            },
            ..scaled_config()
        };
        let mut defender = CrashConsistentDefender::install(&mut system, config, store).unwrap();
        let evil = system.install_app("com.evil", []);
        for _ in 0..6_000 {
            system
                .call_service(
                    evil,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            assert!(defender.poll(&mut system).is_none());
        }
        let stats = defender.stats();
        assert!(stats.gave_up);
        assert_eq!(stats.crashes, 1, "a dead defender cannot crash again");
        assert_eq!(stats.restarts, 0);
        assert!(!defender.is_running());
        assert!(system.pid_of(evil).is_some(), "nobody left to kill it");
    }

    #[test]
    fn resume_restores_monitor_state_across_a_host_restart() {
        let mut system = boot(FaultPlan::none());
        let store = Rc::new(MemoryStore::new());
        let config = scaled_config();
        let mut defender =
            CrashConsistentDefender::install(&mut system, config.clone(), store.clone()).unwrap();
        let evil = system.install_app("com.evil", []);
        // Push past the record threshold but stay below the trigger.
        for _ in 0..600 {
            system
                .call_service(
                    evil,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            assert!(defender.poll(&mut system).is_none());
        }
        let live = defender
            .defender()
            .unwrap()
            .monitor()
            .current_count(system.system_server_pid());
        assert!(live > 0);
        drop(defender);
        system.clear_jgr_observers();
        let mut resumed = CrashConsistentDefender::resume(&mut system, config, store).unwrap();
        let recovered = resumed
            .defender()
            .unwrap()
            .monitor()
            .current_count(system.system_server_pid());
        assert_eq!(recovered, live, "replay rebuilds the table size");
        // And the resumed defender still finishes the job.
        let d = attack_until_detection(&mut system, &mut resumed, evil, 8_000);
        assert!(d.is_some() || system.pid_of(evil).is_none());
    }

    #[test]
    fn periodic_checkpoints_bound_replay() {
        let mut system = boot(FaultPlan::none());
        let store = Rc::new(MemoryStore::new());
        let config = scaled_config();
        let interval = config.checkpoint_interval;
        let mut defender =
            CrashConsistentDefender::install(&mut system, config.clone(), store.clone()).unwrap();
        let evil = system.install_app("com.evil", []);
        for _ in 0..600 {
            system
                .call_service(
                    evil,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            defender.poll(&mut system);
            assert!(
                defender.records_since_compaction() < interval + 8,
                "compaction keeps the journal near the interval"
            );
        }
        assert!(defender.stats().checkpoints_written > 1);
        drop(defender);
        system.clear_jgr_observers();
        let resumed = CrashConsistentDefender::resume(&mut system, config, store).unwrap();
        assert!(
            resumed.stats().replayed_records <= interval + 8,
            "replay is bounded by the checkpoint interval, got {}",
            resumed.stats().replayed_records
        );
    }
}
