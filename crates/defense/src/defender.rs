//! Phase 3: the JGRE Defender service.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

use jgre_framework::{KillOutcome, System};
use jgre_sim::{CrashPoint, Pid, SimDuration, SimTime, Uid};
use serde::{Deserialize, Serialize};

use crate::{segment_tree_scores, DefenseError, JgrMonitor, ScoreParams, ScoreReport, UidScore};

/// Defender tuning. The defaults are the paper's deployed parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenderConfig {
    /// Runtime starts recording JGR event times at this table size.
    pub record_threshold: usize,
    /// Runtime alerts the defender at this table size.
    pub trigger_threshold: usize,
    /// Recovery target: kill until the victim's table is back below this
    /// (Observation 1 puts the benign band under ~3000).
    pub normal_level: usize,
    /// The Δ uncertainty band for Algorithm 1 (system-wide average
    /// 1.8 ms).
    pub delta: SimDuration,
    /// Escalating correlation windows. Detection retries with the next
    /// window when the best score is not confident — the mechanism behind
    /// §V-D.1's three slow (>1 s) detections.
    pub windows: Vec<SimDuration>,
    /// Histogram bin width.
    pub bin: SimDuration,
    /// Minimum fraction of observed adds the top score must explain to
    /// stop escalating windows.
    pub confidence: f64,
    /// Safety valve on kills per detection.
    pub max_kills: usize,
    /// §VI extension: classify IPC calls by code-execution path before
    /// scoring. A multi-path attacker splits its timing signature across
    /// paths; per-path buckets restore the concentration.
    pub classify_paths: bool,
    /// Correlation watchdog: when the fraction of IPC log records that
    /// survived in the scored horizon (estimated from driver sequence-
    /// number gaps) falls below this floor, Algorithm 1's timing
    /// correlation is no longer trustworthy and the defender falls back
    /// to coarse per-UID call-count scoring, reporting
    /// [`DegradationCause::LowIpcCoverage`].
    pub coverage_floor: f64,
    /// Retries per victim when `am force-stop` fails (fault injection);
    /// each retry backs off exponentially from
    /// [`kill_backoff`](Self::kill_backoff).
    pub kill_retries: u32,
    /// Initial backoff after a failed kill; doubles per retry.
    pub kill_backoff: SimDuration,
    /// Alarm hysteresis: after finishing a pass for a victim, further
    /// alarms on the same pid are ignored for this long, so a flapping
    /// table (e.g. kills that keep failing or respawning) cannot trigger
    /// a kill storm. Zero disables hysteresis (the paper's behaviour).
    pub cooldown: SimDuration,
}

impl Default for DefenderConfig {
    fn default() -> Self {
        Self {
            record_threshold: crate::RECORD_THRESHOLD,
            trigger_threshold: crate::TRIGGER_THRESHOLD,
            normal_level: 3_000,
            delta: SimDuration::from_micros(1_800),
            windows: vec![
                SimDuration::from_millis(8),
                SimDuration::from_millis(16),
                SimDuration::from_millis(32),
            ],
            bin: SimDuration::from_micros(50),
            confidence: 0.35,
            max_kills: 8,
            classify_paths: false,
            coverage_floor: 0.95,
            kill_retries: 3,
            kill_backoff: SimDuration::from_millis(10),
            cooldown: SimDuration::ZERO,
        }
    }
}

impl DefenderConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// The first [`DefenseError`] found, checking thresholds, windows,
    /// bin width, and the confidence / coverage fractions.
    pub fn validate(&self) -> Result<(), DefenseError> {
        if self.record_threshold >= self.trigger_threshold {
            return Err(DefenseError::InvalidThresholds {
                record: self.record_threshold,
                trigger: self.trigger_threshold,
            });
        }
        if self.windows.is_empty() {
            return Err(DefenseError::NoWindows);
        }
        if self.bin.as_micros() == 0 {
            return Err(DefenseError::ZeroBin);
        }
        if !(0.0..=1.0).contains(&self.confidence) || self.confidence.is_nan() {
            return Err(DefenseError::InvalidConfidence(self.confidence));
        }
        if !(0.0..=1.0).contains(&self.coverage_floor) || self.coverage_floor.is_nan() {
            return Err(DefenseError::InvalidCoverageFloor(self.coverage_floor));
        }
        Ok(())
    }
}

/// Which ranking produced a detection's scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoringKind {
    /// Algorithm 1 timing correlation over the segment-tree histogram —
    /// full confidence.
    SegmentTree,
    /// Coarse per-UID call-count ranking — the degraded fallback when the
    /// IPC log cannot support timing correlation.
    CallCount,
}

/// Why a detection's confidence was reduced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DegradationCause {
    /// Sequence-number gaps show the scored horizon is missing too many
    /// IPC records for timing correlation; the defender fell back to
    /// call-count scoring.
    LowIpcCoverage {
        /// Estimated surviving fraction of records in the horizon.
        observed: f64,
        /// The configured [`DefenderConfig::coverage_floor`].
        floor: f64,
    },
    /// The monitor's JGR timestamps arrived out of order (corrupted
    /// journal); they were sorted before scoring, but the original order
    /// was lost.
    UnsortedJgrTimestamps,
    /// `am force-stop` kept failing for this app even after retries; its
    /// entries were not reclaimed.
    KillFailed {
        /// The app that would not die.
        uid: Uid,
        /// Kill attempts made (1 + retries).
        attempts: u32,
    },
    /// Recovery ended (kill budget or candidates exhausted) with the
    /// victim's table still above the normal level.
    RecoveryIncomplete {
        /// Victim table size when the pass gave up.
        remaining: usize,
    },
}

impl fmt::Display for DegradationCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationCause::LowIpcCoverage { observed, floor } => write!(
                f,
                "ipc log coverage {observed:.2} below floor {floor:.2}; fell back to call-count scoring"
            ),
            DegradationCause::UnsortedJgrTimestamps => {
                write!(f, "jgr timestamps unsorted; sorted before scoring")
            }
            DegradationCause::KillFailed { uid, attempts } => {
                write!(f, "kill of {uid} failed after {attempts} attempt(s)")
            }
            DegradationCause::RecoveryIncomplete { remaining } => {
                write!(f, "recovery incomplete: {remaining} entries remain")
            }
        }
    }
}

/// The facts of one completed detection + recovery pass (shared between
/// full-confidence and degraded outcomes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// The process whose alarm fired.
    pub victim: Pid,
    /// When the defender picked the alarm up.
    pub detected_at: SimTime,
    /// Which ranking produced [`scores`](Self::scores).
    pub scoring: ScoringKind,
    /// Estimated fraction of IPC log records that survived in the scored
    /// horizon (1.0 on a pristine log).
    pub coverage: f64,
    /// Final scoring round, highest first.
    pub scores: Vec<UidScore>,
    /// Apps killed, in order.
    pub killed: Vec<Uid>,
    /// Correlation rounds run (1 = first window sufficed).
    pub rounds: usize,
    /// Total `(IPC, JGR)` pairs examined across rounds.
    pub pairs_processed: u64,
    /// IPC log records scanned across rounds.
    pub records_scanned: u64,
    /// Modeled on-device time for the whole pass — the §V-D.1 response
    /// delay. Also applied to the virtual clock. Includes kill-retry
    /// backoff under fault injection.
    pub response_delay: SimDuration,
    /// Victim table size after recovery (`None` when the victim died
    /// before recovery finished).
    pub victim_jgr_after: Option<usize>,
}

/// One completed detection + recovery pass.
///
/// [`Full`](Self::Full) is the paper's outcome: a pristine log, Algorithm 1
/// scoring, a drained table. [`Degraded`](Self::Degraded) carries the same
/// report plus the explicit reasons confidence was reduced — the defender
/// states *why* instead of guessing. Both variants [`Deref`](std::ops::Deref)
/// to [`DetectionReport`], so field access works uniformly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DetectionOutcome {
    /// Detection and recovery completed with full confidence.
    Full(DetectionReport),
    /// Detection completed, but confidence was reduced for the listed
    /// causes (degraded scoring, failed kills, incomplete recovery).
    Degraded {
        /// The facts of the pass.
        report: DetectionReport,
        /// Every reason confidence was reduced, in the order encountered.
        causes: Vec<DegradationCause>,
    },
}

impl DetectionOutcome {
    /// The underlying report, whichever variant this is.
    pub fn report(&self) -> &DetectionReport {
        match self {
            DetectionOutcome::Full(report) => report,
            DetectionOutcome::Degraded { report, .. } => report,
        }
    }

    /// The degradation causes (empty for [`Full`](Self::Full)).
    pub fn causes(&self) -> &[DegradationCause] {
        match self {
            DetectionOutcome::Full(_) => &[],
            DetectionOutcome::Degraded { causes, .. } => causes,
        }
    }

    /// Whether confidence was reduced.
    pub fn is_degraded(&self) -> bool {
        matches!(self, DetectionOutcome::Degraded { .. })
    }

    /// One-paragraph human summary of the pass (examples and the CLI use
    /// it; all fields remain available for structured consumers).
    pub fn render(&self) -> String {
        let r = self.report();
        let top = r
            .scores
            .iter()
            .take(3)
            .map(|s| format!("{}={}", s.uid, s.score))
            .collect::<Vec<_>>()
            .join(", ");
        let mut text = format!(
            "victim {} alarmed at {}; {} correlation round(s) over {} IPC records / {} pairs              in {}; top scores [{}]; killed {:?}; victim table now {:?}",
            r.victim,
            r.detected_at,
            r.rounds,
            r.records_scanned,
            r.pairs_processed,
            r.response_delay,
            top,
            r.killed,
            r.victim_jgr_after,
        );
        if let DetectionOutcome::Degraded { causes, .. } = self {
            let listed = causes
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            text.push_str(&format!("; DEGRADED: {listed}"));
        }
        text
    }
}

impl std::ops::Deref for DetectionOutcome {
    type Target = DetectionReport;

    fn deref(&self) -> &DetectionReport {
        self.report()
    }
}

/// The defender service: owns the monitor, reads the driver log, scores,
/// kills.
#[derive(Debug)]
pub struct JgreDefender {
    monitor: Rc<JgrMonitor>,
    config: DefenderConfig,
    /// Per-victim end time of the last completed pass, for alarm
    /// hysteresis.
    last_pass: RefCell<BTreeMap<Pid, SimTime>>,
    /// When set (only by the crash-consistent harness), [`try_poll`]
    /// consults the fault layer's defender-crash channel at each poll /
    /// kill boundary. Off by default: an unsupervised defender never
    /// crashes, and never draws from the channel.
    ///
    /// [`try_poll`]: Self::try_poll
    crash_channel: Cell<bool>,
}

impl JgreDefender {
    /// Installs the defense on a device: validates the configuration,
    /// registers the runtime monitor on every current and future process,
    /// shares the device's fault layer with the monitor, and turns on the
    /// Binder driver's IPC recording (the Figure 10 overhead).
    ///
    /// # Errors
    ///
    /// Any [`DefenseError`] from [`DefenderConfig::validate`].
    pub fn install(system: &mut System, config: DefenderConfig) -> Result<Self, DefenseError> {
        config.validate()?;
        let monitor = Rc::new(JgrMonitor::new(
            config.record_threshold,
            config.trigger_threshold,
        )?);
        monitor.set_fault_layer(system.faults().clone());
        system.register_jgr_observer(monitor.clone());
        system.driver_mut().set_defense_recording(true);
        Ok(Self {
            monitor,
            config,
            last_pass: RefCell::new(BTreeMap::new()),
            crash_channel: Cell::new(false),
        })
    }

    /// Rebuilds a defender around an already-recovered monitor and
    /// cooldown state (the crash-consistent harness, after replay).
    ///
    /// # Errors
    ///
    /// Any [`DefenseError`] from [`DefenderConfig::validate`].
    pub(crate) fn from_parts(
        monitor: Rc<JgrMonitor>,
        config: DefenderConfig,
        last_pass: Vec<(Pid, SimTime)>,
    ) -> Result<Self, DefenseError> {
        config.validate()?;
        Ok(Self {
            monitor,
            config,
            last_pass: RefCell::new(last_pass.into_iter().collect()),
            crash_channel: Cell::new(false),
        })
    }

    /// The per-victim cooldown stamps, in pid order (checkpointing).
    pub(crate) fn last_pass_entries(&self) -> Vec<(Pid, SimTime)> {
        self.last_pass
            .borrow()
            .iter()
            .map(|(&pid, &at)| (pid, at))
            .collect()
    }

    /// Arms or disarms the crash channel (crash-consistent harness only).
    pub(crate) fn set_crash_channel(&self, enabled: bool) {
        self.crash_channel.set(enabled);
    }

    /// Returns `Err(point)` when the armed crash channel says the
    /// defender process dies at `point`; a cheap no-op (no RNG draw)
    /// while the channel is disarmed.
    fn crash_if(&self, system: &System, point: CrashPoint) -> Result<(), CrashPoint> {
        if self.crash_channel.get() && system.faults().crash_at(point) {
            return Err(point);
        }
        Ok(())
    }

    /// The shared monitor.
    pub fn monitor(&self) -> &Rc<JgrMonitor> {
        &self.monitor
    }

    /// The active configuration.
    pub fn config(&self) -> &DefenderConfig {
        &self.config
    }

    /// Runs one scoring pass against the victim's current recording
    /// without killing anything (used by the Figure 8/9 experiments).
    /// Returns `None` when nothing is recorded for the victim.
    pub fn score_only(
        &self,
        system: &System,
        victim: Pid,
        delta: SimDuration,
    ) -> Option<ScoreReport> {
        let mut adds = self.monitor.add_times(victim);
        if adds.is_empty() {
            return None;
        }
        adds.sort_unstable();
        let since = self.monitor.recording_since(victim)?;
        let window = *self.config.windows.last()?;
        let (ipc, _coverage) = self.collect_ipc(system, victim, since);
        let params = ScoreParams {
            delta,
            window,
            bin: self.config.bin,
        };
        Some(segment_tree_scores(&ipc, &adds, params))
    }

    /// Checks for alarms and, when one is raised, runs detection and
    /// recovery: score apps by Algorithm 1 over escalating windows, then
    /// kill top-ranked apps until the victim's JGR table is back to
    /// normal. Advances the virtual clock by the modeled computation
    /// time.
    ///
    /// Under fault injection the pass degrades instead of failing:
    ///
    /// 1. low IPC-log coverage (sequence-number gaps) switches scoring to
    ///    the coarse per-UID call-count ranking;
    /// 2. unsorted JGR timestamps are sorted before scoring;
    /// 3. failed kills are retried with exponential backoff;
    /// 4. a victim that finished a pass is left alone for
    ///    [`DefenderConfig::cooldown`] (alarm hysteresis);
    /// 5. whatever reduced confidence is reported in
    ///    [`DetectionOutcome::Degraded`].
    pub fn poll(&self, system: &mut System) -> Option<DetectionOutcome> {
        debug_assert!(
            !self.crash_channel.get(),
            "an armed crash channel requires try_poll"
        );
        self.try_poll(system).ok().flatten()
    }

    /// [`poll`](Self::poll), with the defender's own mortality modeled:
    /// when the crash channel is armed (crash-consistent harness) and the
    /// fault layer fires, the pass stops dead at the given
    /// [`CrashPoint`] — whatever kills and clock advances already
    /// happened stay happened, the monitor is *not* reset, the driver log
    /// is *not* pruned, and no outcome is produced. Exactly the state a
    /// real process leaves behind when it is SIGKILLed mid-pass.
    ///
    /// # Errors
    ///
    /// The [`CrashPoint`] at which the defender died.
    pub fn try_poll(&self, system: &mut System) -> Result<Option<DetectionOutcome>, CrashPoint> {
        let now = system.now();
        let Some(victim) = self.monitor.alarmed_pids().into_iter().find(|pid| {
            self.last_pass
                .borrow()
                .get(pid)
                .is_none_or(|&last| now.saturating_since(last) >= self.config.cooldown)
        }) else {
            return Ok(None);
        };
        self.crash_if(system, CrashPoint::PollStart)?;
        let detected_at = now;
        let mut causes: Vec<DegradationCause> = Vec::new();

        let mut adds = self.monitor.add_times(victim);
        let since = match self.monitor.recording_since(victim) {
            Some(t) if !adds.is_empty() => t,
            _ => {
                self.monitor.reset(victim);
                return Ok(None);
            }
        };
        // Ground-truth cross-check: a dead victim has nothing to recover.
        if system.jgr_count(victim).is_none() {
            self.monitor.reset(victim);
            return Ok(None);
        }
        if !adds.windows(2).all(|w| w[0] <= w[1]) {
            adds.sort_unstable();
            causes.push(DegradationCause::UnsortedJgrTimestamps);
        }
        let (ipc, coverage) = self.collect_ipc(system, victim, since);

        let mut rounds = 0usize;
        let mut pairs_processed = 0u64;
        let mut records_scanned = 0u64;
        let mut response_us = 0u64;
        let scoring;
        let report;
        if coverage < self.config.coverage_floor {
            // Correlation watchdog: too many records are missing for the
            // timing histogram to mean anything — Algorithm 1 would score
            // whichever app happened to keep its records. Fall back to
            // volume ranking (the §V-A strawman: crude, but it degrades
            // predictably and we *say so*).
            causes.push(DegradationCause::LowIpcCoverage {
                observed: coverage,
                floor: self.config.coverage_floor,
            });
            scoring = ScoringKind::CallCount;
            rounds = 1;
            let r = call_count_scores(&ipc);
            records_scanned = r.records_scanned;
            // One linear pass over the log; no pair matching, no
            // histogram.
            response_us += r.records_scanned;
            report = r;
        } else {
            scoring = ScoringKind::SegmentTree;
            // Escalating-window correlation.
            let mut last = None;
            for window in &self.config.windows {
                rounds += 1;
                let r = segment_tree_scores(
                    &ipc,
                    &adds,
                    ScoreParams {
                        delta: self.config.delta,
                        window: *window,
                        bin: self.config.bin,
                    },
                );
                pairs_processed += r.pairs_processed;
                records_scanned += r.records_scanned;
                // Modeled on-device cost of this round. The dominant term is
                // the per-add candidate scan, linear in the correlation window
                // (each JGR add searches `window` worth of the IPC log), with
                // smaller terms for log parsing and histogram updates. With
                // the paper's 8000-add recording span, the first window costs
                // ≈0.5 s; escalation doubles the window each round, which is
                // how the midi/sip/print trio lands above one second and
                // `registerDeviceServer` near 3.6 s (§V-D.1).
                let window_factor = (window.as_micros()).max(1) as f64
                    / self.config.windows[0].as_micros().max(1) as f64;
                response_us += (adds.len() as f64 * 62.0 * window_factor) as u64
                    + r.records_scanned * 3
                    + r.pairs_processed * 2;
                let confident = r
                    .top()
                    .is_some_and(|t| t.score as f64 >= self.config.confidence * adds.len() as f64);
                last = Some(r);
                if confident {
                    break;
                }
            }
            let Some(last) = last else {
                return Ok(None);
            };
            report = last;
        }
        // The scoring cost lands on the clock before recovery begins, so
        // kill timestamps (and any respawns) happen after the analysis
        // delay — same ordering the paper's on-device defender has.
        system
            .clock()
            .advance(SimDuration::from_micros(response_us));
        self.crash_if(system, CrashPoint::PostScoring)?;

        // Recovery: kill by rank until the table is back to normal, with
        // bounded retry-with-backoff when a kill fails.
        let mut killed = Vec::new();
        'candidates: for s in &report.scores {
            if killed.len() >= self.config.max_kills || s.score == 0 || !s.uid.is_app() {
                continue;
            }
            match system.jgr_count(victim) {
                Some(count) if count >= self.config.normal_level => {
                    self.crash_if(system, CrashPoint::Kill)?;
                    let mut attempts = 0u32;
                    loop {
                        attempts += 1;
                        match system.kill_app(s.uid) {
                            KillOutcome::Killed | KillOutcome::Respawned => {
                                // am force-stop costs a few tens of ms.
                                let cost = SimDuration::from_millis(30);
                                system.clock().advance(cost);
                                response_us += cost.as_micros();
                                killed.push(s.uid);
                                break;
                            }
                            KillOutcome::NotRunning => break,
                            KillOutcome::Failed => {
                                if attempts > self.config.kill_retries {
                                    causes.push(DegradationCause::KillFailed {
                                        uid: s.uid,
                                        attempts,
                                    });
                                    continue 'candidates;
                                }
                                // Exponential backoff before the retry.
                                let backoff =
                                    self.config.kill_backoff * (1u64 << (attempts - 1).min(16));
                                system.clock().advance(backoff);
                                response_us += backoff.as_micros();
                            }
                        }
                    }
                }
                _ => break,
            }
        }
        let victim_jgr_after = system.jgr_count(victim);
        if let Some(remaining) = victim_jgr_after {
            if remaining >= self.config.normal_level {
                causes.push(DegradationCause::RecoveryIncomplete { remaining });
            }
        }
        let response_delay = SimDuration::from_micros(response_us);
        self.monitor.reset(victim);
        self.last_pass.borrow_mut().insert(victim, system.now());
        // Bound the proc-file log: records older than the recovered
        // window are useless now.
        system.driver_mut().prune_log(since);
        let report = DetectionReport {
            victim,
            detected_at,
            scoring,
            coverage,
            scores: report.scores,
            killed,
            rounds,
            pairs_processed,
            records_scanned,
            response_delay,
            victim_jgr_after,
        };
        Ok(Some(if causes.is_empty() {
            DetectionOutcome::Full(report)
        } else {
            DetectionOutcome::Degraded { report, causes }
        }))
    }

    /// Groups the driver's transaction log into the per-app, per-IPC-type
    /// time series Algorithm 1 consumes, deduplicating records by driver
    /// sequence number (duplicate faults must not double-vote). Only
    /// app-uid traffic addressed to the victim within the recording
    /// horizon is scored; coverage is estimated over *all* horizon
    /// records, because drops do not discriminate by target.
    fn collect_ipc(
        &self,
        system: &System,
        victim: Pid,
        since: SimTime,
    ) -> (BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>>, f64) {
        let window = self
            .config
            .windows
            .last()
            .copied()
            .unwrap_or(SimDuration::ZERO);
        let horizon = SimTime::from_micros(since.as_micros().saturating_sub(window.as_micros()));
        let mut out: BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>> = BTreeMap::new();
        let mut seen = BTreeSet::new();
        let mut seq_lo = u64::MAX;
        let mut seq_hi = 0u64;
        for record in system.driver().log_since(horizon) {
            seq_lo = seq_lo.min(record.seq);
            seq_hi = seq_hi.max(record.seq);
            if !seen.insert(record.seq) {
                continue;
            }
            if record.to_pid != victim || !record.from_uid.is_app() {
                continue;
            }
            let key = if self.config.classify_paths {
                record.ipc_type_with_path()
            } else {
                record.ipc_type()
            };
            out.entry(record.from_uid)
                .or_default()
                .entry(key)
                .or_default()
                .push(record.at);
        }
        // Delay/reorder faults can hand the series back out of order;
        // the scorer's pairing assumes sorted times.
        for types in out.values_mut() {
            for series in types.values_mut() {
                if !series.windows(2).all(|w| w[0] <= w[1]) {
                    series.sort_unstable();
                }
            }
        }
        let coverage = if seen.is_empty() {
            1.0
        } else {
            seen.len() as f64 / (seq_hi - seq_lo + 1) as f64
        };
        (out, coverage)
    }
}

/// The degraded ranking: raw per-UID call volume toward the victim (the
/// §V-A strawman, reused deliberately — when timing data is untrustworthy
/// the honest coarse signal beats a precise hallucination).
fn call_count_scores(ipc: &BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>>) -> ScoreReport {
    let mut records_scanned = 0u64;
    let mut scores: Vec<UidScore> = ipc
        .iter()
        .map(|(&uid, types)| {
            let per_type: Vec<(String, u64)> = types
                .iter()
                .map(|(t, calls)| (t.clone(), calls.len() as u64))
                .collect();
            let score: u64 = per_type.iter().map(|(_, n)| n).sum();
            records_scanned += score;
            UidScore {
                uid,
                score,
                per_type,
            }
        })
        .collect();
    scores.sort_by(|a, b| b.score.cmp(&a.score).then(a.uid.cmp(&b.uid)));
    ScoreReport {
        scores,
        pairs_processed: 0,
        records_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_framework::{CallOptions, SystemConfig};
    use jgre_sim::{FaultIntensity, FaultKind, FaultPlan};

    fn defended_system(cap: usize) -> (System, JgreDefender) {
        defended_system_with(cap, FaultPlan::none(), DefenderConfig::default())
    }

    fn defended_system_with(
        cap: usize,
        faults: FaultPlan,
        base: DefenderConfig,
    ) -> (System, JgreDefender) {
        let mut system = System::boot_with(SystemConfig {
            seed: 7,
            jgr_capacity: Some(cap),
            faults,
            ..SystemConfig::default()
        });
        let config = DefenderConfig {
            record_threshold: cap / 12,
            trigger_threshold: cap / 4,
            normal_level: cap / 10,
            ..base
        };
        let defender =
            JgreDefender::install(&mut system, config).expect("defender config is valid");
        (system, defender)
    }

    fn attack_until_detection(
        system: &mut System,
        defender: &JgreDefender,
        evil: Uid,
        budget: usize,
    ) -> DetectionOutcome {
        for _ in 0..budget {
            system
                .call_service(
                    evil,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            if let Some(d) = defender.poll(system) {
                return d;
            }
        }
        panic!("attack must trip the alarm within {budget} calls");
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut system = System::boot(7);
        let bad = DefenderConfig {
            windows: vec![],
            ..DefenderConfig::default()
        };
        assert_eq!(
            JgreDefender::install(&mut system, bad).err(),
            Some(DefenseError::NoWindows)
        );
        let bad = DefenderConfig {
            coverage_floor: 1.5,
            ..DefenderConfig::default()
        };
        assert!(matches!(
            JgreDefender::install(&mut system, bad).err(),
            Some(DefenseError::InvalidCoverageFloor(_))
        ));
    }

    #[test]
    fn detection_render_is_informative() {
        let (mut system, defender) = defended_system(4_000);
        let evil = system.install_app("com.evil", []);
        let d = attack_until_detection(&mut system, &defender, evil, 8_000);
        let text = d.render();
        assert!(text.contains("correlation round"), "{text}");
        assert!(text.contains("killed [Uid(10000)]"), "{text}");
        assert!(!text.contains("DEGRADED"), "{text}");
    }

    #[test]
    fn quiet_system_never_alarms() {
        let (mut system, defender) = defended_system(4_000);
        let app = system.install_app("com.quiet", []);
        for _ in 0..20 {
            system
                .call_service(
                    app,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
        }
        assert!(defender.poll(&mut system).is_none());
    }

    #[test]
    fn single_attacker_detected_and_killed_before_exhaustion() {
        let (mut system, defender) = defended_system(4_000);
        let evil = system.install_app("com.evil", []);
        let mut detection = None;
        for _ in 0..4_000 {
            let o = system
                .call_service(
                    evil,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            assert!(!o.host_aborted, "defense must fire before exhaustion");
            if let Some(d) = defender.poll(&mut system) {
                detection = Some(d);
                break;
            }
        }
        let d = detection.expect("attack must trip the alarm");
        assert!(!d.is_degraded(), "pristine run must be full confidence");
        assert_eq!(d.scoring, ScoringKind::SegmentTree);
        assert!((d.coverage - 1.0).abs() < 1e-9, "pristine log is complete");
        assert_eq!(d.killed, vec![evil]);
        assert_eq!(system.soft_reboots(), 0);
        assert!(d.victim_jgr_after.unwrap() < defender.config().normal_level);
        assert_eq!(d.rounds, 1, "typical interface resolves in one window");
        assert!(d.scores[0].uid == evil);
        // The attacker's process is gone; calling again relaunches it
        // from scratch (fresh process).
        assert!(system.pid_of(evil).is_none());
    }

    #[test]
    fn benign_heavy_user_not_killed() {
        let (mut system, defender) = defended_system(4_000);
        let evil = system.install_app("com.evil", []);
        let benign = system.install_app("com.busy", []);
        // The benign app hammers an innocent interface (more calls than
        // the attacker!), while the attacker leaks.
        let spec = system.spec().clone();
        let innocent = spec
            .service("audio")
            .unwrap()
            .methods
            .iter()
            .find(|m| {
                matches!(m.jgr, jgre_corpus::spec::JgrBehavior::NoJgr) && m.permission.is_none()
            })
            .unwrap()
            .name
            .clone();
        let mut detection = None;
        let mut think = 0x9E37_79B9u64;
        for i in 0..6_000 {
            system
                .call_service(benign, "audio", &innocent, CallOptions::default())
                .unwrap();
            // User think time decorrelates the benign stream from the
            // attacker's JGR adds (real apps do not run in lockstep with
            // the Binder loop).
            think = think.wrapping_mul(6364136223846793005).wrapping_add(1);
            let gap_ms = 3 + (think >> 33) % 12;
            system
                .clock()
                .advance(jgre_sim::SimDuration::from_millis(gap_ms));
            if i % 2 == 0 {
                system
                    .call_service(evil, "audio", "startWatchingRoutes", CallOptions::default())
                    .unwrap();
            }
            if let Some(d) = defender.poll(&mut system) {
                detection = Some(d);
                break;
            }
        }
        let d = detection.expect("attack must trip the alarm");
        assert_eq!(d.killed, vec![evil], "only the attacker dies");
    }

    #[test]
    fn slow_delay_interface_needs_more_windows() {
        // Real capacity and the paper's thresholds: the 4000→12000
        // recording window sits where registerDeviceServer's observed
        // IPC→JGR latency (≈9.5–15.4 ms) exceeds the first correlation
        // window, forcing escalation — the §V-D.1 slow case.
        let mut system = System::boot_with(SystemConfig {
            seed: 7,
            ..SystemConfig::default()
        });
        let defender = JgreDefender::install(&mut system, DefenderConfig::default())
            .expect("defender config is valid");
        let evil = system.install_app("com.evil", []);
        let mut detection = None;
        for _ in 0..6_000 {
            let o = system
                .call_service(evil, "midi", "registerDeviceServer", CallOptions::default())
                .unwrap();
            assert!(!o.host_aborted);
            if let Some(d) = defender.poll(&mut system) {
                detection = Some(d);
                break;
            }
        }
        let d = detection.expect("alarm");
        assert!(
            d.rounds > 1,
            "12 ms Delay exceeds the first window, got {} round(s)",
            d.rounds
        );
        assert_eq!(d.killed, vec![evil]);
        // A fast interface on the same configuration resolves in round 1
        // and therefore faster.
        let evil2 = system.install_app("com.evil2", []);
        let mut fast = None;
        for _ in 0..16_000 {
            system
                .call_service(
                    evil2,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            if let Some(d) = defender.poll(&mut system) {
                fast = Some(d);
                break;
            }
        }
        let fast = fast.expect("second alarm");
        assert_eq!(fast.rounds, 1);
        assert!(fast.response_delay < d.response_delay);
    }

    #[test]
    fn severe_record_loss_falls_back_to_call_counts() {
        let (mut system, defender) = defended_system_with(
            4_000,
            FaultPlan::single(FaultKind::IpcDrop, FaultIntensity::Severe),
            DefenderConfig::default(),
        );
        let evil = system.install_app("com.evil", []);
        let d = attack_until_detection(&mut system, &defender, evil, 8_000);
        assert!(d.is_degraded());
        assert_eq!(d.scoring, ScoringKind::CallCount);
        assert!(
            d.coverage < defender.config().coverage_floor,
            "{}",
            d.coverage
        );
        assert!(d
            .causes()
            .iter()
            .any(|c| matches!(c, DegradationCause::LowIpcCoverage { .. })));
        // The sole heavy caller still tops the coarse ranking.
        assert_eq!(d.killed, vec![evil]);
        assert!(d.render().contains("DEGRADED"), "{}", d.render());
    }

    #[test]
    fn unkillable_app_reported_not_looped_forever() {
        let plan = FaultPlan {
            kill_fail: 1.0,
            ..FaultPlan::none()
        };
        let (mut system, defender) = defended_system_with(4_000, plan, DefenderConfig::default());
        let evil = system.install_app("com.evil", []);
        let d = attack_until_detection(&mut system, &defender, evil, 8_000);
        assert!(d.is_degraded());
        assert!(d.killed.is_empty(), "nothing actually died");
        let retries = defender.config().kill_retries;
        assert!(d.causes().iter().any(|c| matches!(
            c,
            DegradationCause::KillFailed { uid, attempts }
                if *uid == evil && *attempts == retries + 1
        )));
        assert!(d
            .causes()
            .iter()
            .any(|c| matches!(c, DegradationCause::RecoveryIncomplete { .. })));
        // Retry backoff is part of the modeled response time.
        assert!(d.response_delay >= SimDuration::from_millis(70));
    }

    #[test]
    fn one_transient_kill_failure_recovers_cleanly() {
        // The issue's headline moderate case: the first force-stop fails,
        // the retry lands, recovery completes.
        let plan = FaultPlan {
            kill_fail: 1.0,
            kill_fail_budget: 1,
            ..FaultPlan::none()
        };
        let (mut system, defender) = defended_system_with(4_000, plan, DefenderConfig::default());
        let evil = system.install_app("com.evil", []);
        let d = attack_until_detection(&mut system, &defender, evil, 8_000);
        assert_eq!(d.killed, vec![evil]);
        assert!(
            d.victim_jgr_after.unwrap() < defender.config().normal_level,
            "table drains once the retry lands"
        );
        assert!(!d.is_degraded(), "a recovered retry is not a degradation");
    }

    #[test]
    fn cooldown_suppresses_back_to_back_passes() {
        let plan = FaultPlan {
            kill_fail: 1.0,
            ..FaultPlan::none()
        };
        let config = DefenderConfig {
            cooldown: SimDuration::from_secs(3_600),
            ..DefenderConfig::default()
        };
        let (mut system, defender) = defended_system_with(4_000, plan, config);
        let evil = system.install_app("com.evil", []);
        let first = attack_until_detection(&mut system, &defender, evil, 8_000);
        assert!(first.killed.is_empty(), "the app is unkillable");
        // The table is still saturated; the very next event re-raises the
        // alarm, but the victim is in cooldown: no second kill storm.
        for _ in 0..50 {
            system
                .call_service(
                    evil,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            assert!(
                defender.poll(&mut system).is_none(),
                "cooldown must suppress an immediate second pass"
            );
        }
    }
}
