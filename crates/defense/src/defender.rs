//! Phase 3: the JGRE Defender service.

use std::collections::BTreeMap;
use std::rc::Rc;

use jgre_framework::System;
use jgre_sim::{Pid, SimDuration, SimTime, Uid};
use serde::{Deserialize, Serialize};

use crate::{segment_tree_scores, JgrMonitor, ScoreParams, ScoreReport, UidScore};

/// Defender tuning. The defaults are the paper's deployed parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenderConfig {
    /// Runtime starts recording JGR event times at this table size.
    pub record_threshold: usize,
    /// Runtime alerts the defender at this table size.
    pub trigger_threshold: usize,
    /// Recovery target: kill until the victim's table is back below this
    /// (Observation 1 puts the benign band under ~3000).
    pub normal_level: usize,
    /// The Δ uncertainty band for Algorithm 1 (system-wide average
    /// 1.8 ms).
    pub delta: SimDuration,
    /// Escalating correlation windows. Detection retries with the next
    /// window when the best score is not confident — the mechanism behind
    /// §V-D.1's three slow (>1 s) detections.
    pub windows: Vec<SimDuration>,
    /// Histogram bin width.
    pub bin: SimDuration,
    /// Minimum fraction of observed adds the top score must explain to
    /// stop escalating windows.
    pub confidence: f64,
    /// Safety valve on kills per detection.
    pub max_kills: usize,
    /// §VI extension: classify IPC calls by code-execution path before
    /// scoring. A multi-path attacker splits its timing signature across
    /// paths; per-path buckets restore the concentration.
    pub classify_paths: bool,
}

impl Default for DefenderConfig {
    fn default() -> Self {
        Self {
            record_threshold: crate::RECORD_THRESHOLD,
            trigger_threshold: crate::TRIGGER_THRESHOLD,
            normal_level: 3_000,
            delta: SimDuration::from_micros(1_800),
            windows: vec![
                SimDuration::from_millis(8),
                SimDuration::from_millis(16),
                SimDuration::from_millis(32),
            ],
            bin: SimDuration::from_micros(50),
            confidence: 0.35,
            max_kills: 8,
            classify_paths: false,
        }
    }
}

/// One completed detection + recovery pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionOutcome {
    /// The process whose alarm fired.
    pub victim: Pid,
    /// When the defender picked the alarm up.
    pub detected_at: SimTime,
    /// Final scoring round, highest first.
    pub scores: Vec<UidScore>,
    /// Apps killed, in order.
    pub killed: Vec<Uid>,
    /// Correlation rounds run (1 = first window sufficed).
    pub rounds: usize,
    /// Total `(IPC, JGR)` pairs examined across rounds.
    pub pairs_processed: u64,
    /// IPC log records scanned across rounds.
    pub records_scanned: u64,
    /// Modeled on-device time for the whole pass — the §V-D.1 response
    /// delay. Also applied to the virtual clock.
    pub response_delay: SimDuration,
    /// Victim table size after recovery (`None` when the victim died
    /// before recovery finished).
    pub victim_jgr_after: Option<usize>,
}

impl DetectionOutcome {
    /// One-paragraph human summary of the pass (examples and the CLI use
    /// it; all fields remain available for structured consumers).
    pub fn render(&self) -> String {
        let top = self
            .scores
            .iter()
            .take(3)
            .map(|s| format!("{}={}", s.uid, s.score))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "victim {} alarmed at {}; {} correlation round(s) over {} IPC records / {} pairs              in {}; top scores [{}]; killed {:?}; victim table now {:?}",
            self.victim,
            self.detected_at,
            self.rounds,
            self.records_scanned,
            self.pairs_processed,
            self.response_delay,
            top,
            self.killed,
            self.victim_jgr_after,
        )
    }
}

/// The defender service: owns the monitor, reads the driver log, scores,
/// kills.
#[derive(Debug)]
pub struct JgreDefender {
    monitor: Rc<JgrMonitor>,
    config: DefenderConfig,
}

impl JgreDefender {
    /// Installs the defense on a device: registers the runtime monitor on
    /// every current and future process and turns on the Binder driver's
    /// IPC recording (the Figure 10 overhead).
    pub fn install(system: &mut System, config: DefenderConfig) -> Self {
        let monitor = Rc::new(JgrMonitor::new(
            config.record_threshold,
            config.trigger_threshold,
        ));
        system.register_jgr_observer(monitor.clone());
        system.driver_mut().set_defense_recording(true);
        Self { monitor, config }
    }

    /// The shared monitor.
    pub fn monitor(&self) -> &Rc<JgrMonitor> {
        &self.monitor
    }

    /// The active configuration.
    pub fn config(&self) -> &DefenderConfig {
        &self.config
    }

    /// Runs one scoring pass against the victim's current recording
    /// without killing anything (used by the Figure 8/9 experiments).
    /// Returns `None` when nothing is recorded for the victim.
    pub fn score_only(
        &self,
        system: &System,
        victim: Pid,
        delta: SimDuration,
    ) -> Option<ScoreReport> {
        let adds = self.monitor.add_times(victim);
        if adds.is_empty() {
            return None;
        }
        let since = self.monitor.recording_since(victim)?;
        let ipc = self.collect_ipc(system, victim, since);
        let params = ScoreParams {
            delta,
            window: *self.config.windows.last().expect("windows is non-empty"),
            bin: self.config.bin,
        };
        Some(segment_tree_scores(&ipc, &adds, params))
    }

    /// Checks for alarms and, when one is raised, runs detection and
    /// recovery: score apps by Algorithm 1 over escalating windows, then
    /// kill top-ranked apps until the victim's JGR table is back to
    /// normal. Advances the virtual clock by the modeled computation
    /// time.
    pub fn poll(&self, system: &mut System) -> Option<DetectionOutcome> {
        let victim = self.monitor.alarmed_pids().into_iter().next()?;
        let detected_at = system.now();
        let adds = self.monitor.add_times(victim);
        let since = match self.monitor.recording_since(victim) {
            Some(t) if !adds.is_empty() => t,
            _ => {
                self.monitor.reset(victim);
                return None;
            }
        };
        let ipc = self.collect_ipc(system, victim, since);

        // Escalating-window correlation.
        let mut rounds = 0usize;
        let mut pairs_processed = 0u64;
        let mut records_scanned = 0u64;
        let mut response_us = 0u64;
        let mut report: Option<ScoreReport> = None;
        for window in &self.config.windows {
            rounds += 1;
            let r = segment_tree_scores(
                &ipc,
                &adds,
                ScoreParams {
                    delta: self.config.delta,
                    window: *window,
                    bin: self.config.bin,
                },
            );
            pairs_processed += r.pairs_processed;
            records_scanned += r.records_scanned;
            // Modeled on-device cost of this round. The dominant term is
            // the per-add candidate scan, linear in the correlation window
            // (each JGR add searches `window` worth of the IPC log), with
            // smaller terms for log parsing and histogram updates. With
            // the paper's 8000-add recording span, the first window costs
            // ≈0.5 s; escalation doubles the window each round, which is
            // how the midi/sip/print trio lands above one second and
            // `registerDeviceServer` near 3.6 s (§V-D.1).
            let window_factor = (window.as_micros()).max(1) as f64
                / self.config.windows[0].as_micros().max(1) as f64;
            response_us += (adds.len() as f64 * 62.0 * window_factor) as u64
                + r.records_scanned * 3
                + r.pairs_processed * 2;
            let confident = r
                .top()
                .is_some_and(|t| t.score as f64 >= self.config.confidence * adds.len() as f64);
            report = Some(r);
            if confident {
                break;
            }
        }
        let report = report.expect("at least one window is configured");
        let response_delay = SimDuration::from_micros(response_us);
        system.clock().advance(response_delay);

        // Recovery: kill by rank until the table is back to normal.
        let mut killed = Vec::new();
        for s in &report.scores {
            if killed.len() >= self.config.max_kills || s.score == 0 || !s.uid.is_app() {
                continue;
            }
            match system.jgr_count(victim) {
                Some(count) if count >= self.config.normal_level => {
                    system.kill_app(s.uid);
                    // am force-stop costs a few tens of ms.
                    system.clock().advance(SimDuration::from_millis(30));
                    killed.push(s.uid);
                }
                _ => break,
            }
        }
        let victim_jgr_after = system.jgr_count(victim);
        self.monitor.reset(victim);
        // Bound the proc-file log: records older than the recovered
        // window are useless now.
        system.driver_mut().prune_log(since);
        Some(DetectionOutcome {
            victim,
            detected_at,
            scores: report.scores,
            killed,
            rounds,
            pairs_processed,
            records_scanned,
            response_delay,
            victim_jgr_after,
        })
    }

    /// Groups the driver's transaction log into the per-app, per-IPC-type
    /// time series Algorithm 1 consumes. Only app-uid traffic addressed
    /// to the victim within the recording horizon is considered.
    fn collect_ipc(
        &self,
        system: &System,
        victim: Pid,
        since: SimTime,
    ) -> BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>> {
        let horizon = SimTime::from_micros(
            since
                .as_micros()
                .saturating_sub(self.config.windows.last().expect("non-empty").as_micros()),
        );
        let mut out: BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>> = BTreeMap::new();
        for record in system.driver().log_since(horizon) {
            if record.to_pid != victim || !record.from_uid.is_app() {
                continue;
            }
            let key = if self.config.classify_paths {
                record.ipc_type_with_path()
            } else {
                record.ipc_type()
            };
            out.entry(record.from_uid)
                .or_default()
                .entry(key)
                .or_default()
                .push(record.at);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_framework::{CallOptions, SystemConfig};

    fn defended_system(cap: usize) -> (System, JgreDefender) {
        let mut system = System::boot_with(SystemConfig {
            seed: 7,
            jgr_capacity: Some(cap),
            ..SystemConfig::default()
        });
        let config = DefenderConfig {
            record_threshold: cap / 12,
            trigger_threshold: cap / 4,
            normal_level: cap / 10,
            ..DefenderConfig::default()
        };
        let defender = JgreDefender::install(&mut system, config);
        (system, defender)
    }

    #[test]
    fn detection_render_is_informative() {
        let (mut system, defender) = defended_system(4_000);
        let evil = system.install_app("com.evil", []);
        let d = loop {
            system
                .call_service(
                    evil,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            if let Some(d) = defender.poll(&mut system) {
                break d;
            }
        };
        let text = d.render();
        assert!(text.contains("correlation round"), "{text}");
        assert!(text.contains("killed [Uid(10000)]"), "{text}");
    }

    #[test]
    fn quiet_system_never_alarms() {
        let (mut system, defender) = defended_system(4_000);
        let app = system.install_app("com.quiet", []);
        for _ in 0..20 {
            system
                .call_service(
                    app,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
        }
        assert!(defender.poll(&mut system).is_none());
    }

    #[test]
    fn single_attacker_detected_and_killed_before_exhaustion() {
        let (mut system, defender) = defended_system(4_000);
        let evil = system.install_app("com.evil", []);
        let mut detection = None;
        for _ in 0..4_000 {
            let o = system
                .call_service(
                    evil,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            assert!(!o.host_aborted, "defense must fire before exhaustion");
            if let Some(d) = defender.poll(&mut system) {
                detection = Some(d);
                break;
            }
        }
        let d = detection.expect("attack must trip the alarm");
        assert_eq!(d.killed, vec![evil]);
        assert_eq!(system.soft_reboots(), 0);
        assert!(d.victim_jgr_after.unwrap() < defender.config().normal_level);
        assert_eq!(d.rounds, 1, "typical interface resolves in one window");
        assert!(d.scores[0].uid == evil);
        // The attacker's process is gone; calling again relaunches it
        // from scratch (fresh process).
        assert!(system.pid_of(evil).is_none());
    }

    #[test]
    fn benign_heavy_user_not_killed() {
        let (mut system, defender) = defended_system(4_000);
        let evil = system.install_app("com.evil", []);
        let benign = system.install_app("com.busy", []);
        // The benign app hammers an innocent interface (more calls than
        // the attacker!), while the attacker leaks.
        let spec = system.spec().clone();
        let innocent = spec
            .service("audio")
            .unwrap()
            .methods
            .iter()
            .find(|m| {
                matches!(m.jgr, jgre_corpus::spec::JgrBehavior::NoJgr) && m.permission.is_none()
            })
            .unwrap()
            .name
            .clone();
        let mut detection = None;
        let mut think = 0x9E37_79B9u64;
        for i in 0..6_000 {
            system
                .call_service(benign, "audio", &innocent, CallOptions::default())
                .unwrap();
            // User think time decorrelates the benign stream from the
            // attacker's JGR adds (real apps do not run in lockstep with
            // the Binder loop).
            think = think.wrapping_mul(6364136223846793005).wrapping_add(1);
            let gap_ms = 3 + (think >> 33) % 12;
            system
                .clock()
                .advance(jgre_sim::SimDuration::from_millis(gap_ms));
            if i % 2 == 0 {
                system
                    .call_service(evil, "audio", "startWatchingRoutes", CallOptions::default())
                    .unwrap();
            }
            if let Some(d) = defender.poll(&mut system) {
                detection = Some(d);
                break;
            }
        }
        let d = detection.expect("attack must trip the alarm");
        assert_eq!(d.killed, vec![evil], "only the attacker dies");
    }

    #[test]
    fn slow_delay_interface_needs_more_windows() {
        // Real capacity and the paper's thresholds: the 4000→12000
        // recording window sits where registerDeviceServer's observed
        // IPC→JGR latency (≈9.5–15.4 ms) exceeds the first correlation
        // window, forcing escalation — the §V-D.1 slow case.
        let mut system = System::boot_with(SystemConfig {
            seed: 7,
            ..SystemConfig::default()
        });
        let defender = JgreDefender::install(&mut system, DefenderConfig::default());
        let evil = system.install_app("com.evil", []);
        let mut detection = None;
        for _ in 0..6_000 {
            let o = system
                .call_service(evil, "midi", "registerDeviceServer", CallOptions::default())
                .unwrap();
            assert!(!o.host_aborted);
            if let Some(d) = defender.poll(&mut system) {
                detection = Some(d);
                break;
            }
        }
        let d = detection.expect("alarm");
        assert!(
            d.rounds > 1,
            "12 ms Delay exceeds the first window, got {} round(s)",
            d.rounds
        );
        assert_eq!(d.killed, vec![evil]);
        // A fast interface on the same configuration resolves in round 1
        // and therefore faster.
        let evil2 = system.install_app("com.evil2", []);
        let mut fast = None;
        for _ in 0..16_000 {
            system
                .call_service(
                    evil2,
                    "clipboard",
                    "addPrimaryClipChangedListener",
                    CallOptions::default(),
                )
                .unwrap();
            if let Some(d) = defender.poll(&mut system) {
                fast = Some(d);
                break;
            }
        }
        let fast = fast.expect("second alarm");
        assert_eq!(fast.rounds, 1);
        assert!(fast.response_delay < d.response_delay);
    }
}
