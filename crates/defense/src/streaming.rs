//! Streaming aggregation of [`DetectionOutcome`]s.
//!
//! Fleet campaigns produce one detection stream per simulated device and
//! cannot afford to materialise them: a million devices × one
//! [`DetectionOutcome`] each is gigabytes of scores and kill lists. A
//! [`DetectionStats`] folds each outcome into fixed-size counters the
//! moment it is produced, and two accumulators merge by addition — a
//! commutative, associative fold, so shard partials combine into the same
//! totals no matter how devices were dealt to workers.

use serde::{Deserialize, Serialize};

use crate::stream::IngestStats;
use crate::{DegradationCause, DetectionOutcome, ScoringKind};

/// Fixed-size accumulator over a stream of [`DetectionOutcome`]s.
///
/// # Example
///
/// ```
/// use jgre_defense::DetectionStats;
///
/// let stats = DetectionStats::new();
/// assert_eq!(stats.outcomes, 0);
/// assert!(stats.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionStats {
    /// Outcomes absorbed.
    pub outcomes: u64,
    /// Full-confidence passes.
    pub full: u64,
    /// Degraded passes.
    pub degraded: u64,
    /// Passes scored by Algorithm 1's segment-tree correlation.
    pub segment_tree_scored: u64,
    /// Passes that fell back to call-count ranking.
    pub call_count_scored: u64,
    /// Apps killed across all passes.
    pub kills: u64,
    /// Correlation rounds run across all passes.
    pub rounds: u64,
    /// `(IPC, JGR)` pairs examined across all passes.
    pub pairs_processed: u64,
    /// IPC log records scanned across all passes.
    pub records_scanned: u64,
    /// Summed modeled response delay, µs.
    pub response_delay_us: u64,
    /// [`DegradationCause::LowIpcCoverage`] occurrences.
    pub low_coverage: u64,
    /// [`DegradationCause::UnsortedJgrTimestamps`] occurrences.
    pub unsorted_timestamps: u64,
    /// [`DegradationCause::KillFailed`] occurrences.
    pub kill_failures: u64,
    /// [`DegradationCause::RecoveryIncomplete`] occurrences.
    pub recovery_incomplete: u64,
    /// Streaming-ingest events accepted into the scoring ring.
    pub ingest_accepted: u64,
    /// Streaming-ingest events dropped by ring backpressure.
    pub ingest_dropped: u64,
    /// Streaming-ingest frames refused by the protocol layer (checksum,
    /// version, or malformed payload).
    pub ingest_rejected: u64,
}

impl DetectionStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no outcome was absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.outcomes == 0
    }

    /// Folds one outcome into the counters.
    pub fn absorb(&mut self, outcome: &DetectionOutcome) {
        let report = outcome.report();
        self.outcomes += 1;
        if outcome.is_degraded() {
            self.degraded += 1;
        } else {
            self.full += 1;
        }
        match report.scoring {
            ScoringKind::SegmentTree => self.segment_tree_scored += 1,
            ScoringKind::CallCount => self.call_count_scored += 1,
        }
        self.kills += report.killed.len() as u64;
        self.rounds += report.rounds as u64;
        self.pairs_processed += report.pairs_processed;
        self.records_scanned += report.records_scanned;
        self.response_delay_us = self
            .response_delay_us
            .saturating_add(report.response_delay.as_micros());
        for cause in outcome.causes() {
            match cause {
                DegradationCause::LowIpcCoverage { .. } => self.low_coverage += 1,
                DegradationCause::UnsortedJgrTimestamps => self.unsorted_timestamps += 1,
                DegradationCause::KillFailed { .. } => self.kill_failures += 1,
                DegradationCause::RecoveryIncomplete { .. } => self.recovery_incomplete += 1,
            }
        }
    }

    /// Folds one streaming run's ingestion accounting into the counters,
    /// surfacing ring drops and protocol rejections at fleet level.
    pub fn absorb_ingest(&mut self, ingest: &IngestStats) {
        self.ingest_accepted += ingest.accepted;
        self.ingest_dropped += ingest.dropped_backpressure;
        self.ingest_rejected += ingest.rejected();
    }

    /// Adds `other`'s counters into `self` (commutative and associative).
    pub fn merge(&mut self, other: &Self) {
        self.outcomes += other.outcomes;
        self.full += other.full;
        self.degraded += other.degraded;
        self.segment_tree_scored += other.segment_tree_scored;
        self.call_count_scored += other.call_count_scored;
        self.kills += other.kills;
        self.rounds += other.rounds;
        self.pairs_processed += other.pairs_processed;
        self.records_scanned += other.records_scanned;
        self.response_delay_us = self
            .response_delay_us
            .saturating_add(other.response_delay_us);
        self.low_coverage += other.low_coverage;
        self.unsorted_timestamps += other.unsorted_timestamps;
        self.kill_failures += other.kill_failures;
        self.recovery_incomplete += other.recovery_incomplete;
        self.ingest_accepted += other.ingest_accepted;
        self.ingest_dropped += other.ingest_dropped;
        self.ingest_rejected += other.ingest_rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetectionReport;
    use jgre_sim::{Pid, SimDuration, SimTime, Uid};

    fn report(killed: usize, delay_us: u64) -> DetectionReport {
        DetectionReport {
            victim: Pid::new(2),
            detected_at: SimTime::from_micros(10),
            scoring: ScoringKind::SegmentTree,
            coverage: 1.0,
            scores: Vec::new(),
            killed: (0..killed)
                .map(|i| Uid::new(Uid::FIRST_APPLICATION.raw() + i as u32))
                .collect(),
            rounds: 1,
            pairs_processed: 100,
            records_scanned: 50,
            response_delay: SimDuration::from_micros(delay_us),
            victim_jgr_after: Some(10),
        }
    }

    #[test]
    fn absorb_counts_variants_and_causes() {
        let mut stats = DetectionStats::new();
        stats.absorb(&DetectionOutcome::Full(report(1, 500)));
        stats.absorb(&DetectionOutcome::Degraded {
            report: report(0, 1_500),
            causes: vec![
                DegradationCause::KillFailed {
                    uid: Uid::FIRST_APPLICATION,
                    attempts: 4,
                },
                DegradationCause::RecoveryIncomplete { remaining: 900 },
            ],
        });
        assert_eq!(stats.outcomes, 2);
        assert_eq!(stats.full, 1);
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.kills, 1);
        assert_eq!(stats.kill_failures, 1);
        assert_eq!(stats.recovery_incomplete, 1);
        assert_eq!(stats.response_delay_us, 2_000);
        assert_eq!(stats.segment_tree_scored, 2);
    }

    #[test]
    fn merge_equals_sequential_absorb_any_order() {
        let outcomes = [
            DetectionOutcome::Full(report(2, 100)),
            DetectionOutcome::Full(report(0, 300)),
            DetectionOutcome::Degraded {
                report: report(1, 700),
                causes: vec![DegradationCause::UnsortedJgrTimestamps],
            },
        ];
        let mut whole = DetectionStats::new();
        for o in &outcomes {
            whole.absorb(o);
        }
        let mut a = DetectionStats::new();
        let mut b = DetectionStats::new();
        a.absorb(&outcomes[0]);
        b.absorb(&outcomes[1]);
        b.absorb(&outcomes[2]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }
}
