//! Two victims under simultaneous attack: one attacker grinds a
//! `system_server` interface while another grinds the Bluetooth app's
//! exported service. Both runtimes raise alarms; the defender must
//! resolve both, attribute correctly, and keep both processes alive.

use jgre_attack::{run_interleaved, Actor, ActorKind, AttackVector};
use jgre_corpus::spec::AospSpec;
use jgre_defense::{DefenderConfig, JgreDefender};
use jgre_framework::{System, SystemConfig};
use jgre_sim::SimDuration;

#[test]
fn defender_resolves_alarms_on_two_victims() {
    let mut system = System::boot_with(SystemConfig {
        seed: 29,
        jgr_capacity: Some(3_200),
        ..SystemConfig::default()
    });
    let defender = JgreDefender::install(
        &mut system,
        DefenderConfig {
            record_threshold: 250,
            trigger_threshold: 750,
            normal_level: 150,
            ..DefenderConfig::default()
        },
    )
    .expect("defender config is valid");
    let spec = AospSpec::android_6_0_1();
    let clip = AttackVector::service_vectors(&spec)
        .into_iter()
        .find(|v| v.service == "clipboard")
        .expect("clipboard is vulnerable");
    let gatt = AttackVector::prebuilt_vectors(&spec)
        .into_iter()
        .find(|v| v.service == "bluetooth_gatt")
        .expect("Bluetooth's GATT service is vulnerable");
    let a1 = system.install_app("com.evil.ss", clip.permissions.clone());
    let a2 = system.install_app("com.evil.bt", gatt.permissions.clone());
    let ss = system.system_server_pid();
    let bt = system
        .service_info("bluetooth_gatt")
        .expect("registered")
        .host;
    assert_ne!(ss, bt, "two distinct victims");

    let actors = vec![
        Actor {
            uid: a1,
            kind: ActorKind::Attacker(clip),
        },
        Actor {
            uid: a2,
            kind: ActorKind::Attacker(gatt),
        },
    ];
    let mut detections = Vec::new();
    for _ in 0..20_000 {
        run_interleaved(
            &mut system,
            actors.clone(),
            SimDuration::from_millis(300),
            29,
            true,
        );
        while let Some(d) = defender.poll(&mut system) {
            detections.push(d);
        }
        if detections.len() >= 2 {
            break;
        }
    }
    assert!(
        detections.len() >= 2,
        "both victims must raise and resolve alarms, got {}",
        detections.len()
    );
    let victims: std::collections::BTreeSet<_> = detections.iter().map(|d| d.victim).collect();
    assert!(victims.contains(&ss), "system_server alarm resolved");
    assert!(victims.contains(&bt), "Bluetooth alarm resolved");
    for d in &detections {
        let expected = if d.victim == ss { a1 } else { a2 };
        assert_eq!(
            d.killed,
            vec![expected],
            "victim {} must kill its own attacker",
            d.victim
        );
    }
    assert_eq!(system.soft_reboots(), 0);
    assert!(
        system.service_info("bluetooth_gatt").is_some(),
        "the Bluetooth service survived"
    );
}
