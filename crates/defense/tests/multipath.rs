//! §VI extension: multi-path attacks and path-classified scoring.
//!
//! The paper's Observation 2 assumes each IPC method has one attack path
//! with a stable `Delay`. §VI discusses attackers rotating between
//! execution paths of the same method to smear their timing signature,
//! and answers: classify IPC calls by execution path first, then count
//! per category. These tests show (a) the smear degrades a
//! single-bucket correlator's score, and (b) the path-classified
//! defender restores it and still kills the attacker.

use jgre_attack::{run_interleaved, Actor, ActorKind, AttackVector};
use jgre_corpus::spec::AospSpec;
use jgre_defense::{DefenderConfig, JgreDefender};
use jgre_framework::{System, SystemConfig};
use jgre_sim::SimDuration;

fn quick_config(classify_paths: bool) -> DefenderConfig {
    DefenderConfig {
        record_threshold: 250,
        trigger_threshold: 750,
        normal_level: 150,
        classify_paths,
        ..DefenderConfig::default()
    }
}

fn system() -> System {
    System::boot_with(SystemConfig {
        seed: 17,
        jgr_capacity: Some(3_200),
        ..SystemConfig::default()
    })
}

/// Runs a multi-path attacker plus a chatty benign app until the alarm
/// fires and returns (attacker score, benign score) at Δ = 1.8 ms.
fn run_scenario(classify_paths: bool, paths: u8) -> (u64, u64) {
    let mut system = system();
    let defender = JgreDefender::install(&mut system, quick_config(classify_paths))
        .expect("defender config is valid");
    let spec = AospSpec::android_6_0_1();
    let vector = AttackVector::service_vectors(&spec)
        .into_iter()
        .find(|v| v.service == "mount" && v.method == "registerListener")
        .expect("mount.registerListener is in Table I");
    let mal = system.install_app("com.evil", vector.permissions.clone());
    let benign = system.install_app("com.benign", []);
    let actors = vec![
        Actor {
            uid: mal,
            kind: ActorKind::MultiPathAttacker { vector, paths },
        },
        Actor {
            uid: benign,
            kind: ActorKind::ChattyBenign {
                max_gap: SimDuration::from_millis(100),
            },
        },
    ];
    for _ in 0..10_000 {
        run_interleaved(
            &mut system,
            actors.clone(),
            SimDuration::from_millis(500),
            17,
            true,
        );
        if !defender.monitor().alarmed_pids().is_empty() {
            break;
        }
    }
    let victim = system.system_server_pid();
    let report = defender
        .score_only(&system, victim, SimDuration::from_micros(1_800))
        .expect("alarm implies a recording");
    let score_of = |uid| {
        report
            .scores
            .iter()
            .find(|s| s.uid == uid)
            .map(|s| s.score)
            .unwrap_or(0)
    };
    (score_of(mal), score_of(benign))
}

#[test]
fn path_rotation_dilutes_single_bucket_scores() {
    let (single_path, _) = run_scenario(false, 1);
    let (smeared, _) = run_scenario(false, 4);
    assert!(
        smeared < single_path,
        "rotating 4 paths must dilute the single-bucket score: {smeared} !< {single_path}"
    );
}

#[test]
fn path_classification_restores_the_score() {
    let (diluted, benign_diluted) = run_scenario(false, 4);
    let (classified, benign_classified) = run_scenario(true, 4);
    assert!(
        classified > diluted,
        "per-path buckets must restore concentration: {classified} !> {diluted}"
    );
    // Both configurations still rank the attacker above the benign app.
    assert!(diluted > benign_diluted);
    assert!(classified > benign_classified);
}

#[test]
fn classified_defender_kills_the_multipath_attacker() {
    let mut system = system();
    let defender =
        JgreDefender::install(&mut system, quick_config(true)).expect("defender config is valid");
    let spec = AospSpec::android_6_0_1();
    let vector = AttackVector::service_vectors(&spec)
        .into_iter()
        .find(|v| v.service == "mount")
        .expect("mount is vulnerable");
    let mal = system.install_app("com.evil", vector.permissions.clone());
    let actors = vec![Actor {
        uid: mal,
        kind: ActorKind::MultiPathAttacker { vector, paths: 4 },
    }];
    let mut detection = None;
    for _ in 0..10_000 {
        run_interleaved(
            &mut system,
            actors.clone(),
            SimDuration::from_millis(500),
            23,
            true,
        );
        if let Some(d) = defender.poll(&mut system) {
            detection = Some(d);
            break;
        }
    }
    let d = detection.expect("multi-path attack must still trip the alarm");
    assert_eq!(d.killed, vec![mal]);
    assert_eq!(system.soft_reboots(), 0);
}
