//! Property-based recovery invariants for the hardened defender.
//!
//! Random fault plans at random intensities drive a full attack +
//! bystander workload; whatever the injector does, the defender must
//! (a) respect its kill budget, (b) never kill the benign-only app when
//! no faults are active, and (c) either drain the table or say honestly
//! that it could not.

use jgre_defense::{DefenderConfig, DegradationCause, DetectionOutcome, JgreDefender};
use jgre_framework::{CallOptions, System, SystemConfig};
use jgre_sim::{FaultIntensity, FaultKind, FaultPlan, SimDuration};
use proptest::prelude::*;

const CAP: usize = 3_200;
const NORMAL: usize = 190;

fn defended(seed: u64, plan: FaultPlan) -> (System, JgreDefender) {
    let mut system = System::boot_with(SystemConfig {
        seed,
        jgr_capacity: Some(CAP),
        faults: plan,
        ..SystemConfig::default()
    });
    let config = DefenderConfig {
        record_threshold: 250,
        trigger_threshold: 750,
        normal_level: NORMAL,
        cooldown: SimDuration::from_millis(100),
        ..DefenderConfig::default()
    };
    let defender = JgreDefender::install(&mut system, config).expect("config is valid");
    (system, defender)
}

/// Any subset of fault channels at any intensity.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    let intensity = prop_oneof![
        Just(FaultIntensity::Off),
        Just(FaultIntensity::Light),
        Just(FaultIntensity::Moderate),
        Just(FaultIntensity::Severe),
    ];
    proptest::collection::vec(intensity, FaultKind::ALL.len()).prop_map(|levels| {
        let mut plan = FaultPlan::none();
        for (kind, level) in FaultKind::ALL.into_iter().zip(levels) {
            let single = FaultPlan::single(kind, level);
            match kind {
                FaultKind::IpcDrop => plan.ipc_drop = single.ipc_drop,
                FaultKind::IpcDuplicate => plan.ipc_duplicate = single.ipc_duplicate,
                FaultKind::IpcDelay => plan.ipc_delay = single.ipc_delay,
                FaultKind::IpcReorder => plan.ipc_reorder = single.ipc_reorder,
                FaultKind::JgrTruncate => plan.jgr_truncate = single.jgr_truncate,
                FaultKind::JgrCorrupt => plan.jgr_corrupt = single.jgr_corrupt,
                FaultKind::ClockJitter => plan.clock_jitter = single.clock_jitter,
                FaultKind::KillFail => {
                    plan.kill_fail = single.kill_fail;
                    plan.kill_fail_budget = single.kill_fail_budget;
                }
                FaultKind::KillRespawn => plan.kill_respawn = single.kill_respawn,
                // Inert for the unsupervised defender under test here
                // (only the crash-consistent harness consumes it), but
                // the channel must not perturb anything else.
                FaultKind::DefenderCrash => {
                    plan.crash = single.crash;
                    plan.crash_budget = single.crash_budget;
                    plan.crash_point = single.crash_point;
                }
            }
        }
        plan
    })
}

/// Runs the shared workload: one leaking attacker, one innocent
/// bystander; returns every detection pass the defender completed.
fn drive(system: &mut System, defender: &JgreDefender) -> (Vec<DetectionOutcome>, jgre_sim::Uid) {
    let mal = system.install_app("com.prop.attacker", []);
    let benign = system.install_app("com.prop.benign", []);
    let mut outcomes = Vec::new();
    for i in 0..(CAP as u64 * 4) {
        let Ok(o) = system.call_service(
            mal,
            "clipboard",
            "addPrimaryClipChangedListener",
            CallOptions::default(),
        ) else {
            break;
        };
        if o.host_aborted {
            break;
        }
        if i % 3 == 0 {
            let _ = system.call_service(benign, "clipboard", "getState", CallOptions::default());
        }
        if let Some(d) = defender.poll(system) {
            let done = !d.killed.is_empty();
            outcomes.push(d);
            if done || outcomes.len() >= 3 {
                break;
            }
        }
    }
    (outcomes, benign)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The kill budget holds for every pass under every fault plan.
    #[test]
    fn never_exceeds_max_kills(seed in 0u64..1_000, plan in plan_strategy()) {
        let (mut system, defender) = defended(seed, plan);
        let (outcomes, _) = drive(&mut system, &defender);
        for d in &outcomes {
            prop_assert!(
                d.killed.len() <= defender.config().max_kills,
                "pass killed {} > budget {}",
                d.killed.len(),
                defender.config().max_kills
            );
        }
    }

    /// With zero fault intensity the benign-only app is never killed and
    /// the outcome carries full confidence.
    #[test]
    fn benign_safe_at_zero_intensity(seed in 0u64..1_000) {
        let (mut system, defender) = defended(seed, FaultPlan::none());
        let (outcomes, benign) = drive(&mut system, &defender);
        prop_assert!(!outcomes.is_empty(), "the leak must be detected");
        for d in &outcomes {
            prop_assert!(!d.killed.contains(&benign), "benign app killed: {:?}", d.killed);
            prop_assert!(!d.is_degraded(), "zero intensity must be full confidence");
        }
    }

    /// Every pass either drains the victim's table below the normal level
    /// or admits it did not (Degraded with RecoveryIncomplete / a dead
    /// victim) — silent failure is the one forbidden outcome.
    #[test]
    fn drains_or_reports_honestly(seed in 0u64..1_000, plan in plan_strategy()) {
        let (mut system, defender) = defended(seed, plan);
        let (outcomes, _) = drive(&mut system, &defender);
        for d in &outcomes {
            match d.victim_jgr_after {
                Some(after) if after >= NORMAL => prop_assert!(
                    d.causes().iter().any(|c| matches!(
                        c,
                        DegradationCause::RecoveryIncomplete { remaining } if *remaining == after
                    )),
                    "table at {after} but no RecoveryIncomplete cause: {:?}",
                    d.causes()
                ),
                _ => {}
            }
        }
    }
}
