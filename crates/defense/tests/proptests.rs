//! Property-based tests for Algorithm 1's invariances.

use std::collections::BTreeMap;

use jgre_defense::{naive_scores, segment_tree_scores, ScoreParams};
use jgre_sim::{SimDuration, SimTime, Uid};
use proptest::prelude::*;

type IpcByUid = BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>>;

/// Random workload: a handful of apps with a couple of IPC types each,
/// call times in a bounded horizon, plus a set of JGR add times.
fn workload_strategy() -> impl Strategy<Value = (IpcByUid, Vec<SimTime>)> {
    let calls = proptest::collection::vec(0u64..2_000_000, 0..120);
    let apps = proptest::collection::vec((0u32..6, 0u8..3, calls), 1..8);
    let adds = proptest::collection::vec(0u64..2_000_000, 0..200);
    (apps, adds).prop_map(|(apps, adds)| {
        let mut ipc: IpcByUid = BTreeMap::new();
        for (app, ty, times) in apps {
            let mut times: Vec<SimTime> = times.into_iter().map(SimTime::from_micros).collect();
            times.sort_unstable();
            ipc.entry(Uid::new(10_000 + app))
                .or_default()
                .entry(format!("I.type{ty}"))
                .or_default()
                .extend(times);
        }
        for series in ipc.values_mut().flat_map(|m| m.values_mut()) {
            series.sort_unstable();
        }
        let mut adds: Vec<SimTime> = adds.into_iter().map(SimTime::from_micros).collect();
        adds.sort_unstable();
        (ipc, adds)
    })
}

fn params(delta_us: u64) -> ScoreParams {
    ScoreParams {
        delta: SimDuration::from_micros(delta_us),
        window: SimDuration::from_millis(8),
        bin: SimDuration::from_micros(50),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The segment-tree and naive implementations agree everywhere — the
    /// §V-D.2 optimisation is score-preserving.
    #[test]
    fn tree_equals_naive((ipc, adds) in workload_strategy(), delta_us in 50u64..5_000) {
        let p = params(delta_us);
        let a = segment_tree_scores(&ipc, &adds, p);
        let b = naive_scores(&ipc, &adds, p);
        prop_assert_eq!(a.scores, b.scores);
        prop_assert_eq!(a.pairs_processed, b.pairs_processed);
        prop_assert_eq!(a.records_scanned, b.records_scanned);
    }

    /// Shifting every timestamp by the same offset leaves all scores
    /// unchanged — the algorithm only looks at deltas.
    #[test]
    fn scores_are_shift_invariant(
        (ipc, adds) in workload_strategy(),
        shift in 0u64..50_000_000,
    ) {
        let p = params(1_800);
        let base = segment_tree_scores(&ipc, &adds, p);
        let shifted_ipc: IpcByUid = ipc
            .iter()
            .map(|(uid, types)| {
                (*uid, types.iter().map(|(t, times)| {
                    (t.clone(), times.iter()
                        .map(|x| SimTime::from_micros(x.as_micros() + shift))
                        .collect())
                }).collect())
            })
            .collect();
        let shifted_adds: Vec<SimTime> = adds
            .iter()
            .map(|x| SimTime::from_micros(x.as_micros() + shift))
            .collect();
        let shifted = segment_tree_scores(&shifted_ipc, &shifted_adds, p);
        let base_scores: Vec<(Uid, u64)> =
            base.scores.iter().map(|s| (s.uid, s.score)).collect();
        let shifted_scores: Vec<(Uid, u64)> =
            shifted.scores.iter().map(|s| (s.uid, s.score)).collect();
        prop_assert_eq!(base_scores, shifted_scores);
    }

    /// An app's score never depends on *other* apps' traffic: dropping a
    /// competitor leaves its score unchanged (scores are per-app sums of
    /// per-type maxima, with no cross-app normalisation).
    #[test]
    fn scores_are_per_app_local((ipc, adds) in workload_strategy()) {
        prop_assume!(ipc.len() >= 2);
        let p = params(1_800);
        let full = segment_tree_scores(&ipc, &adds, p);
        let victim_uid = *ipc.keys().next().expect("non-empty");
        let mut reduced = ipc.clone();
        reduced.remove(&victim_uid);
        let partial = segment_tree_scores(&reduced, &adds, p);
        for s in &partial.scores {
            let in_full = full
                .scores
                .iter()
                .find(|f| f.uid == s.uid)
                .map(|f| f.score)
                .expect("app present in both runs");
            prop_assert_eq!(s.score, in_full);
        }
    }

    /// Splitting one IPC type's calls into per-path buckets can only
    /// increase an app's total score (each bucket's max sums; a single
    /// bucket's max is bounded by the sum of split maxima) — why §VI's
    /// path classification never hurts.
    #[test]
    fn classification_never_lowers_scores(
        calls in proptest::collection::vec((0u64..2_000_000, 0u8..4), 1..120),
        adds in proptest::collection::vec(0u64..2_000_000, 1..120),
    ) {
        let p = params(1_800);
        let uid = Uid::new(10_061);
        let mut merged: IpcByUid = BTreeMap::new();
        let mut split: IpcByUid = BTreeMap::new();
        let mut all: Vec<SimTime> = Vec::new();
        for (at, path) in &calls {
            let t = SimTime::from_micros(*at);
            all.push(t);
            split
                .entry(uid)
                .or_default()
                .entry(format!("I.m#{path}"))
                .or_default()
                .push(t);
        }
        all.sort_unstable();
        for series in split.values_mut().flat_map(|m| m.values_mut()) {
            series.sort_unstable();
        }
        merged.entry(uid).or_default().insert("I.m".to_owned(), all);
        let mut adds: Vec<SimTime> = adds.into_iter().map(SimTime::from_micros).collect();
        adds.sort_unstable();
        let merged_score = segment_tree_scores(&merged, &adds, p).scores[0].score;
        let split_score = segment_tree_scores(&split, &adds, p).scores[0].score;
        prop_assert!(
            split_score >= merged_score,
            "split {split_score} < merged {merged_score}"
        );
    }
}
