//! Kill retry-budget invariants under a permanently failing kill
//! channel.
//!
//! With `kill_fail = 1.0` and an unlimited failure budget, every
//! `am force-stop` the defender issues fails. The configured retry
//! policy must then be exact: each failed candidate is attempted exactly
//! `kill_retries + 1` times, and the cumulative backoff the pass spends
//! on it is exactly `kill_backoff × (2^kill_retries − 1)` — verified
//! differentially, as the `response_delay` gap between a run with
//! backoff `b` and an otherwise identical run with backoff zero.

use jgre_defense::{DefenderConfig, DegradationCause, DetectionOutcome, JgreDefender};
use jgre_framework::{CallOptions, System, SystemConfig};
use jgre_sim::{FaultPlan, SimDuration};
use proptest::prelude::*;

const CAP: usize = 3_200;

fn always_failing_kills() -> FaultPlan {
    FaultPlan {
        kill_fail: 1.0,
        kill_fail_budget: u32::MAX,
        ..FaultPlan::none()
    }
}

/// Runs one attack to the first completed pass under the given retry
/// policy; every kill fails, so the pass ends degraded.
fn first_pass(seed: u64, kill_retries: u32, kill_backoff: SimDuration) -> DetectionOutcome {
    let mut system = System::boot_with(SystemConfig {
        seed,
        jgr_capacity: Some(CAP),
        faults: always_failing_kills(),
        ..SystemConfig::default()
    });
    let config = DefenderConfig {
        record_threshold: 250,
        trigger_threshold: 750,
        normal_level: 190,
        kill_retries,
        kill_backoff,
        ..DefenderConfig::default()
    };
    let defender = JgreDefender::install(&mut system, config).expect("config is valid");
    let mal = system.install_app("com.prop.attacker", []);
    for _ in 0..(CAP as u64 * 4) {
        system
            .call_service(
                mal,
                "clipboard",
                "addPrimaryClipChangedListener",
                CallOptions::default(),
            )
            .expect("clipboard registered");
        if let Some(d) = defender.poll(&mut system) {
            return d;
        }
    }
    panic!("attack must trip the alarm");
}

fn kill_failures(outcome: &DetectionOutcome) -> Vec<(jgre_sim::Uid, u32)> {
    outcome
        .causes()
        .iter()
        .filter_map(|c| match c {
            DegradationCause::KillFailed { uid, attempts } => Some((*uid, *attempts)),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Attempts per candidate never exceed (or undershoot) the budget,
    /// and the backoff bill is exactly the geometric series the config
    /// promises — no hidden retries, no unbounded spinning.
    #[test]
    fn retry_attempts_and_backoff_match_the_configured_budget(
        seed in 0u64..200,
        kill_retries in 0u32..=5,
        backoff_ms in 1u64..=20,
    ) {
        let backoff = SimDuration::from_millis(backoff_ms);
        let with = first_pass(seed, kill_retries, backoff);
        let without = first_pass(seed, kill_retries, SimDuration::ZERO);

        let failures = kill_failures(&with);
        prop_assert!(!failures.is_empty(), "all kills fail, so some candidate must report");
        for (uid, attempts) in &failures {
            prop_assert_eq!(
                *attempts,
                kill_retries + 1,
                "candidate {} attempted {} times under a budget of {}",
                uid, attempts, kill_retries + 1
            );
        }
        prop_assert!(with.killed.is_empty(), "nothing can die on this channel");

        // The two runs are identical up to the backoff waits: same
        // victim, same failed candidates, in the same order.
        prop_assert_eq!(with.victim, without.victim);
        prop_assert_eq!(&failures, &kill_failures(&without));

        // Cumulative backoff per candidate: b·(2^r − 1). The differential
        // delay accounts for every microsecond of it, nothing more.
        let per_candidate = backoff.as_micros() * ((1u64 << kill_retries) - 1);
        let expected = per_candidate * failures.len() as u64;
        let delta = with.response_delay.as_micros() - without.response_delay.as_micros();
        prop_assert_eq!(
            delta,
            expected,
            "backoff bill for {} candidates at {} retries",
            failures.len(),
            kill_retries
        );
    }
}
