//! Crash-consistency invariants for [`CrashConsistentDefender`].
//!
//! The headline property is *differential*: the same seeded attack run
//! twice — once fault-free, once with the defender crashing at random
//! [`CrashPoint`]s — must end in the same place. The attacker dies in
//! both runs; when the crashed run delivers its detection outcome (a
//! crash between the kill and the journal append can swallow it), the
//! victim and kill set match the clean run exactly. The only permitted
//! divergence is time: a bounded, fully accounted recovery-delay window.
//!
//! The negative half feeds the recovery path damaged bytes — bit flips,
//! torn tails, stale schemas, checksum rot — and requires typed
//! rejection plus a working journal-only recovery, never a panic.

use std::rc::Rc;

use jgre_defense::{
    decode_checkpoint, CheckpointReject, CrashConsistentConfig, CrashConsistentDefender,
    DefenderConfig, DetectionOutcome, MemoryStore, CHECKPOINT_SCHEMA_VERSION,
};
use jgre_framework::{CallOptions, System, SystemConfig};
use jgre_sim::{CrashPoint, FaultPlan, SimDuration, Uid};
use proptest::prelude::*;

const CAP: usize = 3_200;
const JOURNAL_HEADER_LEN: usize = 8 + 4 + 8;

fn config() -> CrashConsistentConfig {
    CrashConsistentConfig {
        defender: DefenderConfig {
            record_threshold: 250,
            trigger_threshold: 750,
            normal_level: 190,
            cooldown: SimDuration::from_millis(100),
            ..DefenderConfig::default()
        },
        checkpoint_interval: 64,
        ..CrashConsistentConfig::default()
    }
}

fn defended(seed: u64, plan: FaultPlan) -> (System, CrashConsistentDefender, Rc<MemoryStore>) {
    let mut system = System::boot_with(SystemConfig {
        seed,
        jgr_capacity: Some(CAP),
        faults: plan,
        ..SystemConfig::default()
    });
    let store = Rc::new(MemoryStore::new());
    let defender = CrashConsistentDefender::install(&mut system, config(), store.clone())
        .expect("config is valid");
    (system, defender, store)
}

/// One leaking attacker driven until the defender finishes the job:
/// either a delivered outcome or the attacker's pid vanishing from the
/// process table (the outcome died with a crashing defender).
struct RunResult {
    outcome: Option<DetectionOutcome>,
    attacker_dead: bool,
}

fn drive(system: &mut System, defender: &mut CrashConsistentDefender, mal: Uid) -> RunResult {
    for _ in 0..(CAP as u64 * 4) {
        let Ok(o) = system.call_service(
            mal,
            "clipboard",
            "addPrimaryClipChangedListener",
            CallOptions::default(),
        ) else {
            break;
        };
        if o.host_aborted {
            break;
        }
        if let Some(d) = defender.poll(system) {
            return RunResult {
                attacker_dead: system.pid_of(mal).is_none(),
                outcome: Some(d),
            };
        }
        if system.pid_of(mal).is_none() {
            return RunResult {
                outcome: None,
                attacker_dead: true,
            };
        }
    }
    RunResult {
        outcome: None,
        attacker_dead: system.pid_of(mal).is_none(),
    }
}

/// Crash-only fault plans: every other channel stays at zero so the two
/// differential runs see identical fault-layer behavior except for the
/// crash draws themselves.
fn crash_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    let point = prop_oneof![
        Just(None),
        Just(Some(CrashPoint::PollStart)),
        Just(Some(CrashPoint::PostScoring)),
        Just(Some(CrashPoint::Kill)),
        Just(Some(CrashPoint::JournalAppend)),
        Just(Some(CrashPoint::Checkpoint)),
    ];
    // The compat proptest has no float ranges: sample a percentage.
    (5u32..=100, 1u32..=5, point).prop_map(|(pct, crash_budget, crash_point)| FaultPlan {
        crash: f64::from(pct) / 100.0,
        crash_budget,
        crash_point,
        ..FaultPlan::none()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential recovery: a defender that crashes and recovers ends
    /// where the uncrashed one does — same dead attacker, same victim,
    /// same kill set when the outcome survives — and every microsecond
    /// of divergence is accounted for in `recovery_delay_us`.
    #[test]
    fn crashed_run_converges_to_the_clean_run(seed in 0u64..500, plan in crash_plan_strategy()) {
        let (mut clean_sys, mut clean_def, _) = defended(seed, FaultPlan::none());
        let clean_mal = clean_sys.install_app("com.prop.attacker", []);
        let clean = drive(&mut clean_sys, &mut clean_def, clean_mal);

        let budget = plan.crash_budget;
        let (mut sys, mut def, _) = defended(seed, plan);
        let mal = sys.install_app("com.prop.attacker", []);
        let crashed = drive(&mut sys, &mut def, mal);
        let stats = def.stats();

        // The supervisor's default budget (8 consecutive) exceeds the
        // plan's crash budget (≤ 5), so it never gives up.
        prop_assert!(!stats.gave_up, "restart budget cannot be exhausted here");
        prop_assert!(stats.crashes <= u64::from(budget));
        prop_assert_eq!(stats.restarts, stats.crashes);

        // Ground truth: the attacker dies in both runs.
        prop_assert!(clean.attacker_dead || clean.outcome.is_some());
        prop_assert_eq!(crashed.attacker_dead, true,
            "recovered defender must still kill the attacker");

        // When the crashed run delivers its outcome, it is the clean one.
        if let (Some(c), Some(k)) = (&clean.outcome, &crashed.outcome) {
            prop_assert_eq!(c.victim, k.victim);
            prop_assert_eq!(&c.killed, &k.killed);
        }

        // Every crash leaves a torn tail for reopen to truncate, and the
        // recovery delay decomposes into backoff + replay exactly.
        if stats.crashes > 0 {
            prop_assert!(stats.truncated_bytes > 0);
            let backoff = def.supervisor().total_backoff().as_micros();
            let replay = stats.replayed_records * 2; // replay_cost = 2 µs
            prop_assert_eq!(stats.recovery_delay_us, backoff + replay);
            let cap = def.supervisor().config().backoff_cap.as_micros();
            prop_assert!(stats.recovery_delay_us <= stats.restarts * cap + replay);
        } else {
            prop_assert_eq!(stats.recovery_delay_us, 0);
        }
    }
}

/// Loads the store with sub-trigger traffic and returns it alongside
/// the live watch count, ready for byte-level tampering.
fn loaded_store(seed: u64, calls: u32) -> (System, Rc<MemoryStore>, usize) {
    let (mut system, mut defender, store) = defended(seed, FaultPlan::none());
    let mal = system.install_app("com.prop.attacker", []);
    for _ in 0..calls {
        system
            .call_service(
                mal,
                "clipboard",
                "addPrimaryClipChangedListener",
                CallOptions::default(),
            )
            .unwrap();
        assert!(defender.poll(&mut system).is_none(), "stays below trigger");
    }
    let live = defender
        .defender()
        .unwrap()
        .monitor()
        .current_count(system.system_server_pid());
    drop(defender);
    system.clear_jgr_observers();
    (system, store, live)
}

#[test]
fn journal_bit_flip_truncates_to_the_clean_prefix_without_panicking() {
    let (mut system, store, _) = loaded_store(11, 600);
    let mut bytes = store.journal_bytes();
    assert!(bytes.len() > JOURNAL_HEADER_LEN + 32, "journal has frames");
    // Flip one bit in the middle of the frame region.
    let mid = JOURNAL_HEADER_LEN + (bytes.len() - JOURNAL_HEADER_LEN) / 2;
    bytes[mid] ^= 0x10;
    store.set_journal_bytes(bytes);
    let resumed = CrashConsistentDefender::resume(&mut system, config(), store).unwrap();
    let stats = resumed.stats();
    assert!(
        stats.truncated_bytes > 0,
        "the corrupt suffix must be dropped"
    );
    assert!(resumed.is_running());
    assert_eq!(stats.checkpoints_rejected, 0, "the checkpoint is intact");
}

#[test]
fn journal_mid_frame_truncation_recovers_the_prefix() {
    let (mut system, store, _) = loaded_store(13, 600);
    let mut bytes = store.journal_bytes();
    let torn = bytes.len() - 3;
    bytes.truncate(torn);
    store.set_journal_bytes(bytes);
    let resumed = CrashConsistentDefender::resume(&mut system, config(), store.clone()).unwrap();
    assert!(resumed.stats().truncated_bytes > 0);
    assert!(resumed.is_running());
    // Recovery rewrote a well-formed journal: a second resume sees no
    // damage at all.
    drop(resumed);
    system.clear_jgr_observers();
    let again = CrashConsistentDefender::resume(&mut system, config(), store).unwrap();
    assert_eq!(again.stats().truncated_bytes, 0);
}

#[test]
fn stale_checkpoint_schema_is_rejected_and_recovery_goes_journal_only() {
    let (mut system, store, _) = loaded_store(17, 600);
    let mut cp = store.checkpoint_bytes().expect("periodic checkpoint ran");
    // Patch the schema version field (offset 8, u32 LE).
    cp[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert_eq!(
        decode_checkpoint(&cp),
        Err(CheckpointReject::BadVersion(99)),
        "sanity: the tamper hits the version field"
    );
    assert_ne!(99, CHECKPOINT_SCHEMA_VERSION);
    store.set_checkpoint_bytes(Some(cp));
    let resumed = CrashConsistentDefender::resume(&mut system, config(), store).unwrap();
    let stats = resumed.stats();
    assert_eq!(stats.checkpoints_rejected, 1);
    assert!(resumed.is_running(), "journal-only recovery still boots");
    assert!(
        stats.checkpoints_written >= 1,
        "recovery re-checkpoints the rebuilt state"
    );
}

#[test]
fn checkpoint_checksum_rot_is_rejected_without_panicking() {
    let (mut system, store, _) = loaded_store(19, 600);
    let mut cp = store.checkpoint_bytes().expect("periodic checkpoint ran");
    let last = cp.len() - 1;
    cp[last] ^= 0x01;
    assert_eq!(decode_checkpoint(&cp), Err(CheckpointReject::BadChecksum));
    store.set_checkpoint_bytes(Some(cp));
    let resumed = CrashConsistentDefender::resume(&mut system, config(), store).unwrap();
    assert_eq!(resumed.stats().checkpoints_rejected, 1);
    assert!(resumed.is_running());
}

#[test]
fn journal_only_recovery_still_finishes_the_attack() {
    // Reject the checkpoint outright, then check the resumed defender
    // still detects and kills.
    let (mut system, store, _) = loaded_store(23, 600);
    store.set_checkpoint_bytes(None);
    let mut resumed = CrashConsistentDefender::resume(&mut system, config(), store).unwrap();
    let mal = system.install_app("com.prop.attacker2", []);
    let result = drive(&mut system, &mut resumed, mal);
    assert!(result.attacker_dead, "fresh attacker dies post-recovery");
}
