//! Experiment scaling: paper-faithful vs CI-fast parameterisation.

use jgre_defense::DefenderConfig;
use jgre_framework::SystemConfig;
use jgre_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Resource bounds for one experiment run.
///
/// The JGRE mechanism is threshold-driven, so every experiment scales
/// linearly in the table capacity: shrinking the cap (and the defense
/// thresholds with it) preserves who wins, the ordering of exhaustion
/// times, which protections hold, and which apps get killed — only the
/// absolute magnitudes shrink. `paper()` is used by the benches that
/// regenerate the published numbers; `quick()` keeps the test suite fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// JGR table capacity per runtime.
    pub jgr_capacity: usize,
    /// Defense record threshold.
    pub record_threshold: usize,
    /// Defense trigger threshold.
    pub trigger_threshold: usize,
    /// Defense recovery target.
    pub normal_level: usize,
    /// Standing framework-internal JGR entries in `system_server`
    /// (Figure 4's idle-device floor).
    pub stock_jgr: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The paper's constants: 51200-entry tables, 4000/12000 thresholds,
    /// recovery to below 3000.
    pub fn paper() -> Self {
        Self {
            jgr_capacity: jgre_art::MAX_GLOBAL_REFS,
            record_threshold: jgre_defense::RECORD_THRESHOLD,
            trigger_threshold: jgre_defense::TRIGGER_THRESHOLD,
            normal_level: 3_000,
            stock_jgr: 1_200,
            seed: 2_017,
        }
    }

    /// 1/16th scale for fast runs: 3200-entry tables, 250/750 thresholds.
    pub fn quick() -> Self {
        Self {
            jgr_capacity: 3_200,
            record_threshold: 250,
            trigger_threshold: 750,
            normal_level: 190,
            stock_jgr: 75,
            seed: 2_017,
        }
    }

    /// A copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The framework configuration for this scale.
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig {
            seed: self.seed,
            jgr_capacity: (self.jgr_capacity != jgre_art::MAX_GLOBAL_REFS)
                .then_some(self.jgr_capacity),
            stock_jgr: self.stock_jgr,
            ..SystemConfig::default()
        }
    }

    /// The defender configuration for this scale.
    pub fn defender_config(&self) -> DefenderConfig {
        DefenderConfig {
            record_threshold: self.record_threshold,
            trigger_threshold: self.trigger_threshold,
            normal_level: self.normal_level,
            ..DefenderConfig::default()
        }
    }

    /// The paper's system-wide average Δ (1.8 ms).
    pub fn default_delta(&self) -> SimDuration {
        SimDuration::from_micros(1_800)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_uses_the_real_constants() {
        let s = ExperimentScale::paper();
        assert_eq!(s.jgr_capacity, 51_200);
        assert_eq!(s.record_threshold, 4_000);
        assert_eq!(s.trigger_threshold, 12_000);
        // At paper scale the framework runs with the default capacity.
        assert_eq!(s.system_config().jgr_capacity, None);
    }

    #[test]
    fn quick_scale_preserves_threshold_ordering() {
        let s = ExperimentScale::quick();
        assert!(s.record_threshold < s.trigger_threshold);
        assert!(s.trigger_threshold < s.jgr_capacity);
        assert!(s.normal_level < s.record_threshold);
        assert_eq!(s.system_config().jgr_capacity, Some(3_200));
        assert_eq!(s.defender_config().trigger_threshold, 750);
    }

    #[test]
    fn with_seed_only_changes_the_seed() {
        let a = ExperimentScale::quick();
        let b = a.with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(a.jgr_capacity, b.jgr_capacity);
    }
}
