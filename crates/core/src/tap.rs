//! Device event tap: drive a real simulated device under an attack
//! vector and capture the merged telemetry stream the streaming
//! defender ingests.
//!
//! The tap runs an *undefended* [`System`], installs the vector's
//! attacker plus one chatty benign app, and records both sides of the
//! correlation: every Binder-log [`IpcRecord`](jgre_binder::IpcRecord)
//! becomes a [`StreamEvent::Ipc`], every JGR add on the victim process a
//! [`StreamEvent::JgrAdd`]. Events come out in device order — time
//! ascending, Binder record before IRT add on ties — which is exactly
//! the invariant the incremental correlator's batch-equality rests on.
//!
//! This is the bridge between the fleet simulation and `jgre serve`: the
//! differential suite replays tapped streams through the streaming path
//! and checks the verdicts against batch scoring, and the serve command
//! uses [`TappedStream::characteristic_delay`] to parameterize its
//! synthetic source with a vector's true IPC→JGR latency.

use std::cell::RefCell;
use std::rc::Rc;

use jgre_art::{JgrEvent, JgrEventKind, JgrObserver};
use jgre_attack::AttackVector;
use jgre_defense::stream::StreamEvent;
use jgre_framework::{CallOptions, System};
use jgre_sim::{Pid, SimDuration, SimTime, Uid};

use crate::ExperimentScale;

/// Everything one tap run captured.
#[derive(Debug, Clone)]
pub struct TappedStream {
    /// `service.method` of the driven vector.
    pub interface: String,
    /// The attacker's uid.
    pub attacker: Uid,
    /// The benign app's uid.
    pub benign: Uid,
    /// The victim process hosting the attacked service.
    pub victim: Option<Pid>,
    /// The merged stream, device-ordered.
    pub events: Vec<StreamEvent>,
    /// Binder-log records captured.
    pub calls: u64,
    /// Victim JGR adds captured.
    pub adds: u64,
}

impl TappedStream {
    /// Median delay between an attacker call and the next victim JGR
    /// add — the vector's timing signature, used to parameterize the
    /// synthetic serve source. `None` when the tap saw no (call, add)
    /// pair.
    pub fn characteristic_delay(&self) -> Option<SimDuration> {
        let mut delays: Vec<u64> = Vec::new();
        let mut last_attacker_call: Option<SimTime> = None;
        for event in &self.events {
            match event {
                StreamEvent::Ipc { at, uid, .. } if *uid == self.attacker => {
                    last_attacker_call = Some(*at);
                }
                StreamEvent::JgrAdd { at } => {
                    if let Some(call) = last_attacker_call.take() {
                        delays.push(at.saturating_since(call).as_micros());
                    }
                }
                StreamEvent::Ipc { .. } => {}
            }
        }
        if delays.is_empty() {
            return None;
        }
        delays.sort_unstable();
        Some(SimDuration::from_micros(delays[delays.len() / 2]))
    }
}

/// A [`JgrObserver`] buffering every event for post-run extraction.
#[derive(Debug, Default)]
struct RecordingObserver {
    events: RefCell<Vec<JgrEvent>>,
}

impl JgrObserver for RecordingObserver {
    fn on_jgr_event(&self, event: JgrEvent) {
        self.events.borrow_mut().push(event);
    }
}

/// Drives `vector` against an undefended device for up to `max_calls`
/// attacker calls (stopping early if the victim dies) with benign
/// clipboard traffic interleaved every third call, and returns the
/// merged telemetry stream.
pub fn tap_attack_events(
    scale: ExperimentScale,
    vector: &AttackVector,
    max_calls: u64,
) -> TappedStream {
    let mut system = System::boot_with(scale.system_config());
    let observer = Rc::new(RecordingObserver::default());
    system.register_jgr_observer(observer.clone() as Rc<dyn JgrObserver>);

    let attacker = system.install_app(
        format!("com.tap.{}.{}", vector.service, vector.method),
        vector.permissions.iter().copied(),
    );
    let benign = system.install_app("com.tap.benign", []);

    let mut victim = None;
    for k in 0..max_calls {
        match system.call_service(
            attacker,
            &vector.service,
            &vector.method,
            vector.call_options(),
        ) {
            Ok(outcome) => {
                if outcome.host_aborted {
                    break;
                }
            }
            Err(_) => break,
        }
        if victim.is_none() {
            victim = system
                .driver()
                .log_since(SimTime::ZERO)
                .last()
                .map(|r| r.to_pid);
        }
        if k % 3 == 2 {
            let _ = system.call_service(benign, "clipboard", "getState", CallOptions::benign());
        }
    }

    let mut calls = 0u64;
    let mut adds = 0u64;
    // Merge tag: Binder record before IRT add at equal times, mirroring
    // the device's dispatch order (the driver logs the transaction, then
    // the handler creates its references).
    let mut tagged: Vec<(SimTime, u8, StreamEvent)> = Vec::new();
    for record in system.driver().log_since(SimTime::ZERO) {
        calls += 1;
        tagged.push((
            record.at,
            0,
            StreamEvent::Ipc {
                at: record.at,
                uid: record.from_uid,
                ipc_type: record.ipc_type(),
            },
        ));
    }
    for event in observer.events.borrow().iter() {
        if event.kind != JgrEventKind::Add {
            continue;
        }
        if victim.is_some_and(|v| v != event.pid) {
            continue;
        }
        adds += 1;
        tagged.push((event.at, 1, StreamEvent::JgrAdd { at: event.at }));
    }
    tagged.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    TappedStream {
        interface: format!("{}.{}", vector.service, vector.method),
        attacker,
        benign,
        victim,
        events: tagged.into_iter().map(|(_, _, e)| e).collect(),
        calls,
        adds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_corpus::spec::AospSpec;

    fn first_vector() -> (AospSpec, AttackVector) {
        let spec = AospSpec::android_6_0_1();
        let vector = AttackVector::all_vectors(&spec)
            .into_iter()
            .next()
            .expect("spec has vectors");
        (spec, vector)
    }

    #[test]
    fn tap_is_deterministic_and_ordered() {
        let (_, vector) = first_vector();
        let a = tap_attack_events(ExperimentScale::quick(), &vector, 60);
        let b = tap_attack_events(ExperimentScale::quick(), &vector, 60);
        assert_eq!(a.events, b.events);
        assert!(a.calls > 0 && a.adds > 0, "tap saw traffic: {a:?}");
        assert!(a.events.windows(2).all(|w| w[0].at() <= w[1].at()));
    }

    #[test]
    fn tap_captures_both_apps_and_the_victims_adds() {
        let (_, vector) = first_vector();
        let tap = tap_attack_events(ExperimentScale::quick(), &vector, 60);
        let attacker_calls = tap
            .events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Ipc { uid, .. } if *uid == tap.attacker))
            .count();
        let benign_calls = tap
            .events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Ipc { uid, .. } if *uid == tap.benign))
            .count();
        assert!(attacker_calls > 0);
        assert!(benign_calls > 0);
        assert!(tap.victim.is_some());
    }

    #[test]
    fn characteristic_delay_is_positive_and_stable() {
        let (_, vector) = first_vector();
        let tap = tap_attack_events(ExperimentScale::quick(), &vector, 60);
        let delay = tap.characteristic_delay().expect("attack produces pairs");
        assert!(delay.as_micros() > 0);
        let again = tap_attack_events(ExperimentScale::quick(), &vector, 60);
        assert_eq!(again.characteristic_delay(), Some(delay));
    }
}
