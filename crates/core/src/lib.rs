//! Facade crate of the JGRE reproduction: experiment runners for every
//! table and figure of *"JGRE: An Analysis of JNI Global Reference
//! Exhaustion Vulnerabilities in Android"* (Gu et al., DSN 2017).
//!
//! The heavy lifting lives in the substrate crates
//! ([`jgre_art`], [`jgre_binder`], [`jgre_framework`]), the corpus +
//! pipeline ([`jgre_corpus`], [`jgre_analysis`]), the workloads
//! ([`jgre_attack`]) and the defense ([`jgre_defense`]). This crate wires
//! them into the paper's evaluation:
//!
//! | Runner | Paper artifact |
//! |---|---|
//! | [`experiments::analysis_headline`] | §IV counts + Tables I/IV/V |
//! | [`experiments::table1`] | Table I (44 unprotected interfaces) |
//! | [`experiments::table2`] | Table II (9 helper bypasses) |
//! | [`experiments::table3`] | Table III (per-process limits) |
//! | [`experiments::table4`], [`experiments::table5`] | Tables IV/V |
//! | [`experiments::fig3`] | Figure 3 (JGR growth of the 54 attacks) |
//! | [`experiments::fig4`] | Figure 4 (benign baseline) |
//! | [`experiments::fig5`] | Figure 5 (execution-time growth) |
//! | [`experiments::fig6`] | Figure 6 (execution-time CDF) |
//! | [`experiments::fig8`] | Figure 8 (malicious vs benign scores) |
//! | [`experiments::fig9`] | Figure 9 (colluding apps, Δ sweep) |
//! | [`experiments::fig10`] | Figure 10 (defense IPC overhead) |
//! | [`experiments::response_delay`] | §V-D.1 (detection delays) |
//! | [`experiments::defense_effectiveness`] | §V-C (all 57 defended) |
//!
//! Beyond the per-device runners, the [`fleet`] module scales the
//! simulator to campaigns: [`run_campaign`] shards N independent
//! [`DefendedDevice`]s across worker threads and streams their outcomes
//! into a thread-count-invariant [`FleetSummary`] (the `jgre fleet`
//! subcommand).
//!
//! Every runner takes an [`ExperimentScale`]: [`ExperimentScale::paper`]
//! uses the real constants (51200-entry tables, 4000/12000 thresholds)
//! and reproduces the published magnitudes; [`ExperimentScale::quick`]
//! shrinks the resource bounds proportionally so the whole suite runs in
//! CI seconds while preserving every qualitative shape.
//!
//! # Example
//!
//! ```
//! use jgre_core::{experiments, ExperimentScale};
//!
//! let table2 = experiments::table2(ExperimentScale::quick());
//! assert_eq!(table2.rows.len(), 9);
//! assert!(table2.rows.iter().all(|r| r.direct_binder_bypasses));
//! println!("{}", table2.render());
//! ```

mod device;
pub mod experiments;
pub mod fleet;
mod scale;
pub mod tap;

pub use device::DefendedDevice;
pub use fleet::{run_campaign, run_campaign_observed, FleetConfig, FleetSummary};
pub use scale::ExperimentScale;
pub use tap::{tap_attack_events, TappedStream};

// Re-export the layer crates so downstream users need one dependency.
pub use jgre_analysis as analysis;
pub use jgre_art as art;
pub use jgre_attack as attack;
pub use jgre_binder as binder;
pub use jgre_corpus as corpus;
pub use jgre_defense as defense;
pub use jgre_framework as framework;
pub use jgre_sim as sim;
