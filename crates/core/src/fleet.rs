//! Fleet-scale campaigns: N independent defended devices, sharded across
//! worker threads, streamed into one fixed-size summary.
//!
//! A *campaign* boots [`DefendedDevice`]s by the thousand, drives one
//! catalog attack on each, and folds every run into a [`FleetSummary`]
//! the moment it finishes — no per-device artifact is ever materialised,
//! so a million-device sweep costs the same memory as a ten-device one.
//!
//! Three properties make campaign numbers auditable at a scale nobody can
//! eyeball:
//!
//! 1. **Per-device determinism** — device `i` seeds its whole simulation
//!    from [`stream_seed`]`(campaign_seed, i)`, so its run depends only on
//!    the campaign seed and its id, never on the worker that executed it.
//! 2. **Shard-count invariance** — devices are dealt round-robin to
//!    workers (the `run_wave` pattern from the analysis scheduler) and
//!    shard partials merge by commutative, associative addition, so the
//!    summary is byte-identical for every `--threads` value.
//! 3. **Arena reuse without state leaks** — each worker re-boots one
//!    device slot in place between runs ([`DefendedDevice::reset`]),
//!    sharing the immutable Android image across boots; the determinism
//!    harness pins that a reused slot behaves exactly like a fresh boot.
//!
//! # Example
//!
//! ```
//! use jgre_core::{fleet, ExperimentScale};
//!
//! let config = fleet::FleetConfig {
//!     devices: 60,
//!     ..fleet::FleetConfig::new(ExperimentScale::quick())
//! };
//! let summary = fleet::run_campaign(&config);
//! assert_eq!(summary.devices, 60);
//! // Every device ends in exactly one terminal state.
//! assert_eq!(summary.detected + summary.undetected + summary.exhausted, 60);
//! ```

use std::fmt::Write as _;
use std::rc::Rc;

use jgre_attack::AttackVector;
use jgre_corpus::spec::AospSpec;
use jgre_defense::{DetectionOutcome, DetectionStats};
use jgre_framework::FrameworkError;
use jgre_sim::{stream_seed, Histogram};
use serde::{Deserialize, Serialize};

use crate::{DefendedDevice, ExperimentScale};

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Devices to simulate.
    pub devices: u64,
    /// Worker threads (values ≤ 1 run inline; the summary is identical
    /// for every value).
    pub threads: usize,
    /// Per-device experiment scale. The scale's own seed is ignored —
    /// device `i` runs at `scale.with_seed(stream_seed(campaign_seed, i))`.
    pub scale: ExperimentScale,
    /// Campaign seed deriving every device's RNG stream.
    pub campaign_seed: u64,
    /// `None` sweeps the full attack catalog (device `i` drives vector
    /// `i mod catalog_len`); `Some(index)` drives one catalog vector on
    /// every device.
    pub attack: Option<usize>,
    /// Per-device IPC call budget; `None` defaults to
    /// `4 × scale.jgr_capacity`, enough for several exhaustion cycles.
    pub max_calls: Option<u64>,
}

impl FleetConfig {
    /// A 1000-device, single-thread, full-catalog campaign at `scale`,
    /// seeded by the scale's seed.
    pub fn new(scale: ExperimentScale) -> Self {
        Self {
            devices: 1_000,
            threads: 1,
            scale,
            campaign_seed: scale.seed,
            attack: None,
            max_calls: None,
        }
    }

    fn budget(&self) -> u64 {
        self.max_calls.unwrap_or(self.scale.jgr_capacity as u64 * 4)
    }

    /// Human label of the scale preset ("quick", "paper", or "custom"),
    /// recorded in the summary for provenance.
    pub fn scale_label(&self) -> &'static str {
        if self.scale.jgr_capacity == ExperimentScale::paper().jgr_capacity {
            "paper"
        } else if self.scale.jgr_capacity == ExperimentScale::quick().jgr_capacity {
            "quick"
        } else {
            "custom"
        }
    }
}

/// Everything one device run produced, handed to campaign observers
/// before being folded into the summary and dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRun {
    /// Device id within the campaign.
    pub device: u64,
    /// The derived per-device seed (`stream_seed(campaign_seed, device)`).
    pub seed: u64,
    /// Catalog index of the vector driven.
    pub attack: usize,
    /// `service.method` label of the vector driven.
    pub interface: String,
    /// IPC calls issued.
    pub calls: u64,
    /// Whether the victim survived (no abort).
    pub victim_survived: bool,
    /// Whether the attacker was among the killed apps.
    pub attacker_killed: bool,
    /// Detection passes, in order — exactly the sequence a direct
    /// [`DefendedDevice`] run with the same seed accumulates.
    pub detections: Vec<DetectionOutcome>,
    /// Virtual µs from attack start to the first alarm pickup.
    pub detection_time_us: Option<u64>,
    /// Virtual µs from attack start to victim abort.
    pub exhaustion_time_us: Option<u64>,
}

/// Per-vector slice of a campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackAggregate {
    /// `service.method` label.
    pub interface: String,
    /// Devices that drove this vector.
    pub devices: u64,
    /// Devices with at least one detection.
    pub detected: u64,
    /// Devices with at least one degraded detection.
    pub degraded: u64,
    /// Devices whose victim aborted.
    pub exhausted: u64,
    /// Apps killed across this vector's devices.
    pub kills: u64,
}

/// Fixed-size aggregate of a whole campaign.
///
/// Merging two summaries adds their counters bin-by-bin; the operation is
/// commutative and associative, which is why a campaign's result does not
/// depend on how devices were sharded across workers (the shard-count
/// invariance test serialises summaries from 1/2/7 workers and compares
/// the bytes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Campaign seed the device streams derive from.
    pub campaign_seed: u64,
    /// Scale preset label ("quick" / "paper" / "custom").
    pub scale: String,
    /// Devices simulated.
    pub devices: u64,
    /// IPC calls driven across the fleet.
    pub calls: u64,
    /// Devices whose attack was detected (≥ 1 detection pass).
    pub detected: u64,
    /// Devices whose budget ran out with no detection and no abort.
    pub undetected: u64,
    /// Devices whose victim aborted before any detection.
    pub exhausted: u64,
    /// Devices where the attacker was among the killed apps.
    pub attacker_killed: u64,
    /// Devices with at least one degraded detection pass.
    pub degraded_runs: u64,
    /// Streamed [`DetectionOutcome`] counters across the fleet.
    pub detections: DetectionStats,
    /// Virtual time from attack start to first alarm pickup, µs.
    pub detection_time_us: Histogram,
    /// Modeled defender response delay per pass, µs.
    pub response_delay_us: Histogram,
    /// Virtual time from attack start to victim abort, µs (populated only
    /// by runs the defense failed to stop).
    pub exhaustion_time_us: Histogram,
    /// Per-vector breakdown, in catalog order.
    pub per_attack: Vec<AttackAggregate>,
}

impl FleetSummary {
    fn empty(config: &FleetConfig, catalog: &[AttackVector]) -> Self {
        Self {
            campaign_seed: config.campaign_seed,
            scale: config.scale_label().to_owned(),
            devices: 0,
            calls: 0,
            detected: 0,
            undetected: 0,
            exhausted: 0,
            attacker_killed: 0,
            degraded_runs: 0,
            detections: DetectionStats::new(),
            detection_time_us: Histogram::new(),
            response_delay_us: Histogram::new(),
            exhaustion_time_us: Histogram::new(),
            per_attack: catalog
                .iter()
                .map(|v| AttackAggregate {
                    interface: v.label(),
                    devices: 0,
                    detected: 0,
                    degraded: 0,
                    exhausted: 0,
                    kills: 0,
                })
                .collect(),
        }
    }

    /// Folds one finished device run into the counters.
    pub fn absorb(&mut self, run: &DeviceRun) {
        self.devices += 1;
        self.calls += run.calls;
        let detected = !run.detections.is_empty();
        if detected {
            self.detected += 1;
        } else if run.victim_survived {
            self.undetected += 1;
        }
        if !run.victim_survived {
            self.exhausted += 1;
        }
        if run.attacker_killed {
            self.attacker_killed += 1;
        }
        let mut degraded = false;
        for outcome in &run.detections {
            self.detections.absorb(outcome);
            self.response_delay_us
                .record(outcome.report().response_delay.as_micros());
            degraded |= outcome.is_degraded();
        }
        if degraded {
            self.degraded_runs += 1;
        }
        if let Some(us) = run.detection_time_us {
            self.detection_time_us.record(us);
        }
        if let Some(us) = run.exhaustion_time_us {
            self.exhaustion_time_us.record(us);
        }
        let slot = &mut self.per_attack[run.attack];
        slot.devices += 1;
        slot.detected += u64::from(detected);
        slot.degraded += u64::from(degraded);
        slot.exhausted += u64::from(!run.victim_survived);
        slot.kills += run
            .detections
            .iter()
            .map(|o| o.report().killed.len() as u64)
            .sum::<u64>();
    }

    /// Adds `other`'s counters into `self` (commutative and associative).
    ///
    /// # Panics
    ///
    /// Panics when the summaries come from differently-shaped campaigns
    /// (different seed, scale, or catalog).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.campaign_seed, other.campaign_seed, "seed mismatch");
        assert_eq!(self.scale, other.scale, "scale mismatch");
        assert_eq!(
            self.per_attack.len(),
            other.per_attack.len(),
            "catalog mismatch"
        );
        self.devices += other.devices;
        self.calls += other.calls;
        self.detected += other.detected;
        self.undetected += other.undetected;
        self.exhausted += other.exhausted;
        self.attacker_killed += other.attacker_killed;
        self.degraded_runs += other.degraded_runs;
        self.detections.merge(&other.detections);
        self.detection_time_us.merge(&other.detection_time_us);
        self.response_delay_us.merge(&other.response_delay_us);
        self.exhaustion_time_us.merge(&other.exhaustion_time_us);
        for (mine, theirs) in self.per_attack.iter_mut().zip(&other.per_attack) {
            debug_assert_eq!(mine.interface, theirs.interface);
            mine.devices += theirs.devices;
            mine.detected += theirs.detected;
            mine.degraded += theirs.degraded;
            mine.exhausted += theirs.exhausted;
            mine.kills += theirs.kills;
        }
    }

    /// Plain-text summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fleet campaign — {} devices, {} vector(s), scale {}, seed {}\n\
             detected {}  undetected {}  exhausted {}  attacker killed {}  degraded runs {}\n\
             {} IPC calls; {} detection passes ({} full, {} degraded); {} kills\n",
            self.devices,
            self.per_attack.len(),
            self.scale,
            self.campaign_seed,
            self.detected,
            self.undetected,
            self.exhausted,
            self.attacker_killed,
            self.degraded_runs,
            self.calls,
            self.detections.outcomes,
            self.detections.full,
            self.detections.degraded,
            self.detections.kills,
        );
        if let (Some(mean), Some(p99)) = (
            self.detection_time_us.mean(),
            self.detection_time_us.percentile_bound(99),
        ) {
            let _ = writeln!(
                out,
                "time-to-detection: mean {:.1} ms, p99 ≤ {:.1} ms, max {:.1} ms",
                mean / 1e3,
                p99 as f64 / 1e3,
                self.detection_time_us.max().unwrap_or(0) as f64 / 1e3,
            );
        }
        if !self.exhaustion_time_us.is_empty() {
            let _ = writeln!(
                out,
                "exhaustion times (defense failures): {} devices, mean {:.1} ms",
                self.exhaustion_time_us.count(),
                self.exhaustion_time_us.mean().unwrap_or(0.0) / 1e3,
            );
        }
        for row in &self.per_attack {
            let _ = writeln!(
                out,
                "{:>7} dev  {:>7} det  {:>5} degr  {:>5} exh  {:>6} kills  {}",
                row.devices, row.detected, row.degraded, row.exhausted, row.kills, row.interface
            );
        }
        out
    }
}

/// One worker's reusable device slot plus the shared Android image.
///
/// Booting a device from the arena reuses the previous slot's allocations
/// and the spec; a reused slot is observationally identical to a fresh
/// boot (pinned by `crates/core/tests/device_reset.rs`).
#[derive(Debug)]
pub struct DeviceArena {
    spec: Rc<AospSpec>,
    slot: Option<DefendedDevice>,
}

impl DeviceArena {
    /// Creates an arena around a freshly synthesized Android image.
    pub fn new() -> Self {
        Self {
            spec: Rc::new(AospSpec::android_6_0_1()),
            slot: None,
        }
    }

    /// Boots (or re-boots) the slot at `scale` and hands it out.
    pub fn boot(&mut self, scale: ExperimentScale) -> &mut DefendedDevice {
        match &mut self.slot {
            Some(device) => device.reset(scale),
            None => {
                self.slot = Some(DefendedDevice::boot_with_spec(scale, Rc::clone(&self.spec)));
            }
        }
        self.slot.as_mut().expect("slot was just filled")
    }
}

impl Default for DeviceArena {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs one device of a campaign on an arena slot.
///
/// This is the exact per-device semantics of the fleet: boot at the
/// derived seed, install the attacker, grind the vector until the first
/// detection pass, a victim abort, or the call budget. The N=1
/// equivalence test replays this against a hand-driven [`DefendedDevice`]
/// to pin that the fleet adds nothing on top.
pub fn run_device(
    arena: &mut DeviceArena,
    config: &FleetConfig,
    catalog: &[AttackVector],
    device_id: u64,
) -> DeviceRun {
    let attack = (device_id % catalog.len() as u64) as usize;
    let vector = &catalog[attack];
    let seed = stream_seed(config.campaign_seed, device_id);
    let device = arena.boot(config.scale.with_seed(seed));
    let mal = device.system_mut().install_app(
        format!("com.malware.{}.{}", vector.service, vector.method),
        vector.permissions.iter().copied(),
    );
    let started = device.system().now();
    let mut calls = 0u64;
    let mut victim_survived = true;
    let mut exhaustion_time_us = None;
    for _ in 0..config.budget() {
        match device.call_service(mal, &vector.service, &vector.method, vector.call_options()) {
            Ok(outcome) => {
                calls += 1;
                if outcome.host_aborted {
                    victim_survived = false;
                }
            }
            Err(FrameworkError::ServiceDead | FrameworkError::UnknownService(_)) => {
                victim_survived = false;
            }
            Err(e) => panic!("fleet device {device_id} on {}: {e}", vector.label()),
        }
        if !victim_survived {
            exhaustion_time_us = Some(device.system().now().saturating_since(started).as_micros());
            break;
        }
        if !device.detections().is_empty() {
            break;
        }
    }
    let detections = device.detections().to_vec();
    let detection_time_us = detections
        .first()
        .map(|d| d.report().detected_at.saturating_since(started).as_micros());
    let attacker_killed = detections.iter().any(|d| d.report().killed.contains(&mal));
    DeviceRun {
        device: device_id,
        seed,
        attack,
        interface: vector.label(),
        calls,
        victim_survived,
        attacker_killed,
        detections,
        detection_time_us,
        exhaustion_time_us,
    }
}

/// The catalog a campaign sweeps: the full 57-vector catalog, or the one
/// vector selected by [`FleetConfig::attack`].
///
/// # Panics
///
/// Panics when the selected index is outside the catalog (the CLI
/// validates selectors before building a config).
pub fn campaign_catalog(config: &FleetConfig) -> Vec<AttackVector> {
    let spec = AospSpec::android_6_0_1();
    let catalog = AttackVector::all_vectors(&spec);
    match config.attack {
        None => catalog,
        Some(index) => {
            assert!(
                index < catalog.len(),
                "attack index {index} outside the {}-vector catalog",
                catalog.len()
            );
            vec![catalog[index].clone()]
        }
    }
}

/// Runs a campaign and returns its summary.
pub fn run_campaign(config: &FleetConfig) -> FleetSummary {
    run_campaign_observed(config, |_| {})
}

/// [`run_campaign`], invoking `observer` with every finished device run
/// before it is folded away — the audit hook the determinism harness uses
/// to compare fleet runs against direct device runs.
///
/// Observer calls happen on worker threads, in each shard's device order;
/// the summary itself never depends on observation.
pub fn run_campaign_observed<F>(config: &FleetConfig, observer: F) -> FleetSummary
where
    F: Fn(&DeviceRun) + Sync,
{
    let catalog = campaign_catalog(config);
    let devices = config.devices;
    let workers = config
        .threads
        .max(1)
        .min(usize::try_from(devices).unwrap_or(usize::MAX))
        .max(1);
    if workers <= 1 {
        let mut arena = DeviceArena::new();
        let mut summary = FleetSummary::empty(config, &catalog);
        for device_id in 0..devices {
            let run = run_device(&mut arena, config, &catalog, device_id);
            observer(&run);
            summary.absorb(&run);
        }
        return summary;
    }
    // The run_wave dealing pattern: worker t owns devices t, t+W, t+2W, …
    // Each worker folds its shard locally; partials merge at the end.
    // Because per-device results depend only on (campaign_seed, id) and
    // the merge is commutative, the summary is identical for every W.
    let catalog = &catalog;
    let observer = &observer;
    let mut partials: Vec<FleetSummary> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                scope.spawn(move || {
                    let mut arena = DeviceArena::new();
                    let mut partial = FleetSummary::empty(config, catalog);
                    let mut device_id = t as u64;
                    while device_id < devices {
                        let run = run_device(&mut arena, config, catalog, device_id);
                        observer(&run);
                        partial.absorb(&run);
                        device_id += workers as u64;
                    }
                    partial
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect()
    });
    let mut summary = partials.remove(0);
    for partial in &partials {
        summary.merge(partial);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_defends_every_device() {
        let config = FleetConfig {
            devices: 57,
            ..FleetConfig::new(ExperimentScale::quick())
        };
        let summary = run_campaign(&config);
        assert_eq!(summary.devices, 57);
        assert_eq!(summary.detected, 57, "\n{}", summary.render());
        assert_eq!(summary.exhausted, 0);
        assert_eq!(summary.attacker_killed, 57);
        // Every catalog vector saw exactly one device.
        assert!(summary.per_attack.iter().all(|a| a.devices == 1));
        assert_eq!(summary.detection_time_us.count(), 57);
    }

    #[test]
    fn single_vector_campaign_only_touches_that_row() {
        let config = FleetConfig {
            devices: 5,
            attack: Some(3),
            ..FleetConfig::new(ExperimentScale::quick())
        };
        let summary = run_campaign(&config);
        assert_eq!(summary.per_attack.len(), 1);
        assert_eq!(summary.per_attack[0].devices, 5);
        assert_eq!(summary.detected, 5);
    }

    #[test]
    fn zero_devices_is_an_empty_summary() {
        let config = FleetConfig {
            devices: 0,
            ..FleetConfig::new(ExperimentScale::quick())
        };
        let summary = run_campaign(&config);
        assert_eq!(summary.devices, 0);
        assert_eq!(summary.per_attack.len(), 57);
        assert!(summary.detection_time_us.is_empty());
    }

    #[test]
    fn observer_sees_every_device_once() {
        use std::sync::Mutex;
        let config = FleetConfig {
            devices: 12,
            threads: 3,
            ..FleetConfig::new(ExperimentScale::quick())
        };
        let seen = Mutex::new(Vec::new());
        run_campaign_observed(&config, |run| seen.lock().unwrap().push(run.device));
        let mut ids = seen.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
    }
}
