//! A batteries-included device: framework + defense, with automatic
//! polling.
//!
//! The experiment runners poll the defender explicitly to measure it;
//! downstream users usually just want a device that defends itself. A
//! [`DefendedDevice`] polls after every dispatched call and accumulates
//! the detections.

use std::rc::Rc;

use jgre_corpus::spec::AospSpec;
use jgre_defense::{DetectionOutcome, JgreDefender};
use jgre_framework::{CallOptions, CallOutcome, FrameworkError, System};
use jgre_sim::Uid;

use crate::ExperimentScale;

/// A [`System`] with the JGRE Defender installed and auto-polled.
///
/// # Example
///
/// ```
/// use jgre_core::{DefendedDevice, ExperimentScale};
/// use jgre_framework::CallOptions;
///
/// let mut device = DefendedDevice::boot(ExperimentScale::quick());
/// let mal = device.system_mut().install_app("com.evil", []);
/// // Grind a vulnerable interface; the device defends itself.
/// for _ in 0..10_000 {
///     let outcome = device
///         .call_service(mal, "clipboard", "addPrimaryClipChangedListener", CallOptions::default())
///         .unwrap();
///     assert!(!outcome.host_aborted);
///     if !device.detections().is_empty() {
///         break;
///     }
/// }
/// assert_eq!(device.detections().len(), 1);
/// assert_eq!(device.system().soft_reboots(), 0);
/// ```
#[derive(Debug)]
pub struct DefendedDevice {
    system: System,
    defender: JgreDefender,
    detections: Vec<DetectionOutcome>,
}

impl DefendedDevice {
    /// Boots a device at the given scale with the defense installed.
    pub fn boot(scale: ExperimentScale) -> Self {
        Self::boot_with_spec(scale, Rc::new(AospSpec::android_6_0_1()))
    }

    /// Boots a device from an already-synthesized (possibly shared) spec —
    /// the fleet engine's boot path, where thousands of devices per worker
    /// share one immutable Android image.
    pub fn boot_with_spec(scale: ExperimentScale, spec: Rc<AospSpec>) -> Self {
        let mut system = System::boot_with_spec(scale.system_config(), spec);
        let defender = JgreDefender::install(&mut system, scale.defender_config())
            .expect("scale presets produce a valid defender config");
        Self {
            system,
            defender,
            detections: Vec::new(),
        }
    }

    /// Re-boots this device in place for the next fleet run, reusing the
    /// shared spec and the detections allocation.
    ///
    /// After a reset the device is observationally identical to a fresh
    /// [`boot`](Self::boot) at the same scale: new system, new defender,
    /// empty detections, virtual clock back at the boot epoch. Nothing
    /// from the previous run — defender monitor state, driver log, JGR
    /// tables, installed apps — survives; the arena-reuse test in
    /// `crates/core/tests/device_reset.rs` pins that equivalence.
    pub fn reset(&mut self, scale: ExperimentScale) {
        let spec = self.system.spec_shared();
        let mut system = System::boot_with_spec(scale.system_config(), spec);
        self.defender = JgreDefender::install(&mut system, scale.defender_config())
            .expect("scale presets produce a valid defender config");
        self.system = system;
        self.detections.clear();
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the underlying system (app management, GC, …).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// The installed defender.
    pub fn defender(&self) -> &JgreDefender {
        &self.defender
    }

    /// Detections accumulated so far, in order.
    pub fn detections(&self) -> &[DetectionOutcome] {
        &self.detections
    }

    /// Dispatches one IPC call and lets the defender react to any alarm it
    /// raised.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameworkError`] from the dispatch; note that the
    /// caller itself may have been killed by an earlier detection, in
    /// which case the framework restarts its process transparently.
    pub fn call_service(
        &mut self,
        caller: Uid,
        service: &str,
        method: &str,
        options: CallOptions,
    ) -> Result<CallOutcome, FrameworkError> {
        let outcome = self.system.call_service(caller, service, method, options)?;
        while let Some(detection) = self.defender.poll(&mut self.system) {
            self.detections.push(detection);
        }
        Ok(outcome)
    }

    /// Dispatches one raw Binder transaction (see
    /// [`System::transact_raw`]) and polls the defender, exactly as
    /// [`call_service`](Self::call_service) does — the entry point the
    /// fuzzer drives so detections accumulate under malformed traffic too.
    ///
    /// # Errors
    ///
    /// Propagates [`FrameworkError`] for bad addressing or permission
    /// denials; malformed parcels come back as typed rejected outcomes,
    /// not errors.
    pub fn transact_raw(
        &mut self,
        caller: Uid,
        service: &str,
        code: u32,
        parcel: &mut jgre_binder::Parcel,
    ) -> Result<CallOutcome, FrameworkError> {
        let outcome = self.system.transact_raw(caller, service, code, parcel)?;
        while let Some(detection) = self.defender.poll(&mut self.system) {
            self.detections.push(detection);
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_survives_and_records_detections() {
        let mut device = DefendedDevice::boot(ExperimentScale::quick());
        let mal = device.system_mut().install_app("com.evil", []);
        let mut calls = 0u64;
        while device.detections().is_empty() {
            device
                .call_service(mal, "audio", "startWatchingRoutes", CallOptions::default())
                .expect("audio registered");
            calls += 1;
            assert!(calls < 50_000, "defense never fired");
        }
        let d = &device.detections()[0];
        assert_eq!(d.killed, vec![mal]);
        assert_eq!(device.system().soft_reboots(), 0);
        // The device keeps serving (the attacker's process restarts on the
        // next call, table near the floor).
        let benign = device.system_mut().install_app("com.fine", []);
        let o = device
            .call_service(
                benign,
                "clipboard",
                "addPrimaryClipChangedListener",
                CallOptions::default(),
            )
            .expect("still serving");
        assert!(o.status.is_completed());
    }

    #[test]
    fn quiet_device_accumulates_nothing() {
        let mut device = DefendedDevice::boot(ExperimentScale::quick());
        let app = device.system_mut().install_app("com.quiet", []);
        for _ in 0..50 {
            device
                .call_service(app, "clipboard", "getState", CallOptions::default())
                .expect("innocent method");
        }
        assert!(device.detections().is_empty());
    }
}
