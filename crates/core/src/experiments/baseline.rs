//! Figure 4 — the benign baseline that justifies the alarm threshold.

use jgre_attack::{BenignSample, BenignWorkload, BenignWorkloadConfig};
use jgre_framework::System;
use serde::{Deserialize, Serialize};

use crate::ExperimentScale;

/// Figure 4: `system_server` JGR size and process count under the
/// top-apps benign sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig4 {
    /// Sampled series.
    pub samples: Vec<BenignSample>,
    /// Smallest observed JGR table size.
    pub jgr_min: usize,
    /// Largest observed JGR table size.
    pub jgr_max: usize,
    /// Smallest observed process count.
    pub proc_min: usize,
    /// Largest observed process count.
    pub proc_max: usize,
    /// Apps exercised.
    pub apps: usize,
}

impl Fig4 {
    /// Plain-text summary.
    pub fn render(&self) -> String {
        format!(
            "Figure 4 — benign baseline over the top {} apps\n\
             system_server JGR: {}..{} (paper: ~1000..3000, vs cap 51200)\n\
             running processes: {}..{} (paper: 382..421)\n\
             samples: {}\n",
            self.apps,
            self.jgr_min,
            self.jgr_max,
            self.proc_min,
            self.proc_max,
            self.samples.len(),
        )
    }
}

/// Regenerates Figure 4 with the paper's protocol (scaled by
/// `apps` / `session_secs` for quick runs).
pub fn fig4(scale: ExperimentScale, apps: usize, session_secs: u64) -> Fig4 {
    let mut system = System::boot_with(scale.system_config());
    // Long runs would grow the driver log unboundedly; the baseline does
    // not need it.
    system.driver_mut().set_log_enabled(false);
    let mut workload = BenignWorkload::new(
        BenignWorkloadConfig {
            apps,
            apps_per_round: 100.min(apps),
            session: jgre_sim::SimDuration::from_secs(session_secs),
            calls_per_session: 40,
            sample_every: jgre_sim::SimDuration::from_secs(60),
        },
        scale.seed,
    );
    let samples = workload.run(&mut system);
    assert_eq!(system.soft_reboots(), 0, "benign load must never reboot");
    let jgr_min = samples
        .iter()
        .map(|s| s.system_server_jgr)
        .min()
        .unwrap_or(0);
    let jgr_max = samples
        .iter()
        .map(|s| s.system_server_jgr)
        .max()
        .unwrap_or(0);
    let proc_min = samples.iter().map(|s| s.processes).min().unwrap_or(0);
    let proc_max = samples.iter().map(|s| s.processes).max().unwrap_or(0);
    Fig4 {
        samples,
        jgr_min,
        jgr_max,
        proc_min,
        proc_max,
        apps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_framework::STOCK_PROCESS_COUNT;

    #[test]
    fn baseline_band_matches_observation_1() {
        let f = fig4(ExperimentScale::quick(), 50, 20);
        // Small and stable relative to the cap; processes within the LMK
        // envelope.
        assert!(f.jgr_max < ExperimentScale::quick().jgr_capacity / 2);
        assert!(f.proc_min >= STOCK_PROCESS_COUNT);
        assert!(f.proc_max <= STOCK_PROCESS_COUNT + 39);
        assert!(f.render().contains("benign baseline"));
    }
}
