//! Tables II and III — the study of existing ad hoc protections (§IV-C).

use std::fmt::Write as _;

use jgre_corpus::spec::{AospSpec, Flaw, Protection};
use jgre_framework::{CallOptions, CallStatus, FrameworkError, System};
use serde::{Deserialize, Serialize};

use crate::ExperimentScale;

/// One Table II row: a helper-class-protected interface and the
/// demonstration that the protection is client-side only.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Service name.
    pub service: String,
    /// Helper class enforcing the threshold.
    pub helper_class: String,
    /// Vulnerable method.
    pub method: String,
    /// Retained requests the helper allowed before refusing.
    pub helper_allowed: u32,
    /// Whether direct Binder calls sailed past the helper's limit.
    pub direct_binder_bypasses: bool,
    /// Retained entries after the direct-Binder burst.
    pub direct_retained: usize,
}

/// Table II: interfaces protected only by service-helper classes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2 {
    /// The 9 rows.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table II — helper-class protections (all bypassable)\n\
             service | helper | method | helper stops at | direct Binder bypasses\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{} | {} | {} | {} | {} (retained {})",
                r.service,
                r.helper_class,
                r.method,
                r.helper_allowed,
                if r.direct_binder_bypasses {
                    "YES"
                } else {
                    "no"
                },
                r.direct_retained,
            );
        }
        out
    }
}

/// Regenerates Table II by *executing* both paths per interface: the
/// documented helper API until it refuses, then Code-Snippet 2's direct
/// Binder loop well past the helper's limit.
pub fn table2(scale: ExperimentScale) -> Table2 {
    let spec = AospSpec::android_6_0_1();
    let mut rows = Vec::new();
    for (svc, m) in spec.vulnerable_service_interfaces() {
        let Protection::HelperThreshold {
            helper_class,
            limit,
        } = &m.protection
        else {
            continue;
        };
        let mut system = System::boot_with(scale.system_config());
        let benign = system.install_app("com.wellbehaved", m.permission);
        let mal = system.install_app("com.evil", m.permission);
        // Path 1: through the helper.
        let mut helper_allowed = 0u32;
        for _ in 0..(limit + 10) {
            match system.call_service(benign, &svc.name, &m.name, CallOptions::benign()) {
                Ok(o) if o.status.is_completed() => helper_allowed += 1,
                Ok(_) => {}
                Err(FrameworkError::HelperLimitExceeded { .. }) => break,
                Err(e) => panic!("helper path {}.{} failed: {e}", svc.name, m.name),
            }
        }
        // Path 2: direct Binder.
        let burst = (*limit as usize) * 3;
        for _ in 0..burst {
            system
                .call_service(mal, &svc.name, &m.name, CallOptions::default())
                .unwrap_or_else(|e| panic!("direct path {}.{} failed: {e}", svc.name, m.name));
        }
        let retained = system.retained_entries(&svc.name, &m.name);
        rows.push(Table2Row {
            service: svc.name.clone(),
            helper_class: helper_class.clone(),
            method: m.name.clone(),
            helper_allowed,
            direct_binder_bypasses: retained > helper_allowed as usize + burst / 2,
            direct_retained: retained,
        });
    }
    rows.sort_by(|a, b| (&a.service, &a.method).cmp(&(&b.service, &b.method)));
    Table2 { rows }
}

/// One Table III row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Service name.
    pub service: String,
    /// Method.
    pub method: String,
    /// Whether honest repeated calls were capped.
    pub honest_capped: bool,
    /// Whether the `"android"` package spoof broke through.
    pub spoof_bypasses: bool,
    /// The paper's verdict column: protected?
    pub protected: bool,
}

/// Table III: per-process server-side limits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3 {
    /// The 4 rows.
    pub rows: Vec<Table3Row>,
}

impl Table3 {
    /// Plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table III — per-process server-side limits\nservice | method | protected?\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{} | {} | {}{}",
                r.service,
                r.method,
                if r.protected { "Yes" } else { "No" },
                if r.spoof_bypasses {
                    " (package-name spoof bypasses)"
                } else {
                    ""
                },
            );
        }
        out
    }
}

/// Regenerates Table III: drive each per-process-limited interface
/// honestly past its cap, then with the `pkg="android"` spoof.
pub fn table3(scale: ExperimentScale) -> Table3 {
    let spec = AospSpec::android_6_0_1();
    let mut rows = Vec::new();
    for svc in &spec.services {
        for m in &svc.methods {
            let Protection::PerProcessLimit { limit, flaw } = &m.protection else {
                continue;
            };
            let mut system = System::boot_with(scale.system_config());
            let app = system.install_app("com.prober", m.permission);
            let mut honest_completed = 0usize;
            for _ in 0..(*limit as usize + 20) {
                match system
                    .call_service(app, &svc.name, &m.name, CallOptions::default())
                    .unwrap_or_else(|e| panic!("{}.{}: {e}", svc.name, m.name))
                {
                    o if o.status == CallStatus::Completed => honest_completed += 1,
                    _ => {}
                }
            }
            let honest_capped = honest_completed <= *limit as usize;
            let before = system.retained_entries(&svc.name, &m.name);
            let spoof = CallOptions {
                spoof_system_package: true,
                ..CallOptions::default()
            };
            let mut spoof_completed = 0usize;
            for _ in 0..(*limit as usize + 20) {
                if system
                    .call_service(app, &svc.name, &m.name, spoof.clone())
                    .unwrap_or_else(|e| panic!("{}.{}: {e}", svc.name, m.name))
                    .status
                    .is_completed()
                {
                    spoof_completed += 1;
                }
            }
            let after = system.retained_entries(&svc.name, &m.name);
            let spoof_bypasses = after > before && spoof_completed > *limit as usize / 2;
            rows.push(Table3Row {
                service: svc.name.clone(),
                method: m.name.clone(),
                honest_capped,
                spoof_bypasses,
                protected: honest_capped && !spoof_bypasses,
            });
            debug_assert_eq!(spoof_bypasses, flaw == &Some(Flaw::SystemPackageSpoof));
        }
    }
    rows.sort_by(|a, b| (&a.service, &a.method).cmp(&(&b.service, &b.method)));
    Table3 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_all_nine_bypassable() {
        let t = table2(ExperimentScale::quick());
        assert_eq!(t.rows.len(), 9);
        for r in &t.rows {
            assert!(
                r.direct_binder_bypasses,
                "{}.{} not bypassed",
                r.service, r.method
            );
            assert!(r.helper_allowed > 0, "helper must allow some use");
        }
        let wifi = t
            .rows
            .iter()
            .find(|r| r.service == "wifi" && r.method == "acquireWifiLock")
            .unwrap();
        assert_eq!(wifi.helper_allowed, 50, "MAX_ACTIVE_LOCKS");
        assert_eq!(wifi.helper_class, "WifiManager");
    }

    #[test]
    fn table3_matches_paper_verdicts() {
        let t = table3(ExperimentScale::quick());
        assert_eq!(t.rows.len(), 4);
        let verdict = |svc: &str, m: &str| {
            t.rows
                .iter()
                .find(|r| r.service == svc && r.method == m)
                .unwrap_or_else(|| panic!("missing {svc}.{m}"))
        };
        let toast = verdict("notification", "enqueueToast");
        assert!(!toast.protected);
        assert!(toast.spoof_bypasses);
        assert!(verdict("display", "registerCallback").protected);
        assert!(verdict("input", "registerInputDevicesChangedListener").protected);
        assert!(verdict("input", "registerTabletModeChangedListener").protected);
        assert!(t.render().contains("package-name spoof bypasses"));
    }
}
