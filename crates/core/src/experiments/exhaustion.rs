//! Figures 3, 5 and 6 — attack dynamics.

use std::fmt::Write as _;

use jgre_attack::{run_exhaustion_attack, AttackSample, AttackVector};
use jgre_corpus::spec::AospSpec;
use jgre_framework::System;
use serde::{Deserialize, Serialize};

use crate::ExperimentScale;

/// One interface's exhaustion curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Series {
    /// `service.method`.
    pub interface: String,
    /// Seconds of attack time to abort the victim.
    pub exhaustion_secs: f64,
    /// Sampled `(seconds, JGR count)` points.
    pub points: Vec<(f64, usize)>,
}

/// Figure 3: JGR growth of all 54 vulnerable interfaces under attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3 {
    /// One curve per interface, fastest first.
    pub series: Vec<Fig3Series>,
    /// The table capacity the curves climb to.
    pub capacity: usize,
}

impl Fig3 {
    /// Fastest exhaustion, seconds.
    pub fn fastest_secs(&self) -> f64 {
        self.series
            .first()
            .map(|s| s.exhaustion_secs)
            .unwrap_or(0.0)
    }

    /// Slowest exhaustion, seconds.
    pub fn slowest_secs(&self) -> f64 {
        self.series.last().map(|s| s.exhaustion_secs).unwrap_or(0.0)
    }

    /// Plain-text summary (per-interface exhaustion times).
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 3 — attack duration to exhaust {} JGR entries\n",
            self.capacity
        );
        for s in &self.series {
            let _ = writeln!(out, "{:>9.1}s  {}", s.exhaustion_secs, s.interface);
        }
        let _ = writeln!(
            out,
            "fastest {:.0}s, slowest {:.0}s",
            self.fastest_secs(),
            self.slowest_secs()
        );
        out
    }
}

/// Regenerates Figure 3: drives each of the 54 vulnerable service
/// interfaces on a fresh device until the victim aborts.
pub fn fig3(scale: ExperimentScale) -> Fig3 {
    let spec = AospSpec::android_6_0_1();
    let mut series = Vec::new();
    for vector in AttackVector::service_vectors(&spec) {
        let mut system = System::boot_with(scale.system_config());
        let sample_every = (scale.jgr_capacity as u64 / 40).max(1);
        let result = run_exhaustion_attack(
            &mut system,
            &vector,
            scale.jgr_capacity as u64 * 4,
            sample_every,
        );
        assert!(
            result.aborted,
            "{}.{} did not exhaust",
            vector.service, vector.method
        );
        series.push(Fig3Series {
            interface: format!("{}.{}", vector.service, vector.method),
            exhaustion_secs: result
                .time_to_exhaustion
                .expect("aborted runs report a duration")
                .as_secs_f64(),
            points: result
                .samples
                .iter()
                .map(|s: &AttackSample| (s.at.as_secs_f64(), s.victim_jgr))
                .collect(),
        });
    }
    series.sort_by(|a, b| a.exhaustion_secs.total_cmp(&b.exhaustion_secs));
    Fig3 {
        series,
        capacity: scale.jgr_capacity,
    }
}

/// Figure 5: execution time of `telephony.registry.listenForSubscriber`
/// against the invocation index during an attack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig5 {
    /// `(invocation index, execution µs)` samples.
    pub points: Vec<(u64, u64)>,
    /// Total invocations driven.
    pub invocations: u64,
}

impl Fig5 {
    /// Mean execution time over the first `n` samples, µs.
    fn mean_first(&self, n: usize) -> f64 {
        let take: Vec<_> = self.points.iter().take(n).collect();
        take.iter().map(|(_, us)| *us as f64).sum::<f64>() / take.len().max(1) as f64
    }

    /// Mean execution time over the last `n` samples, µs.
    fn mean_last(&self, n: usize) -> f64 {
        let take: Vec<_> = self.points.iter().rev().take(n).collect();
        take.iter().map(|(_, us)| *us as f64).sum::<f64>() / take.len().max(1) as f64
    }

    /// Plain-text summary.
    pub fn render(&self) -> String {
        format!(
            "Figure 5 — listenForSubscriber execution time growth\n\
             invocations: {}\nearly mean: {:.0}µs\nlate mean:  {:.0}µs (paper: grows toward ~60000µs near 50k)\n",
            self.invocations,
            self.mean_first(50),
            self.mean_last(50),
        )
    }

    /// Ratio of late to early mean execution time.
    pub fn growth_factor(&self) -> f64 {
        self.mean_last(50) / self.mean_first(50).max(1.0)
    }
}

/// Regenerates Figure 5.
pub fn fig5(scale: ExperimentScale) -> Fig5 {
    let mut system = System::boot_with(scale.system_config());
    let spec = AospSpec::android_6_0_1();
    let vector = AttackVector::service_vectors(&spec)
        .into_iter()
        .find(|v| v.service == "telephony.registry" && v.method == "listenForSubscriber")
        .expect("the interface is in Table I");
    let app = system.install_app("com.attacker", vector.permissions.iter().copied());
    let invocations = (scale.jgr_capacity as u64).saturating_sub(10);
    let mut points = Vec::new();
    let stride = (invocations / 2_000).max(1);
    for i in 0..invocations {
        let o = system
            .call_service(app, &vector.service, &vector.method, vector.call_options())
            .expect("attack calls succeed until exhaustion");
        if i % stride == 0 {
            points.push((i, o.exec_time.as_micros()));
        }
        if o.host_aborted {
            break;
        }
    }
    Fig5 {
        points,
        invocations,
    }
}

/// Figure 6: CDF of execution time across all vulnerable interfaces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig6 {
    /// Sorted execution times, µs (the empirical CDF's x values).
    pub sorted_exec_us: Vec<u64>,
    /// Interfaces driven.
    pub interfaces: usize,
    /// Calls per interface.
    pub calls_per_interface: usize,
}

impl Fig6 {
    /// The p-th percentile execution time, µs.
    ///
    /// # Panics
    ///
    /// Panics if no samples were collected or `p` is not within `0..=100`.
    pub fn percentile(&self, p: u32) -> u64 {
        let mut samples = jgre_sim::Samples::from_values(self.sorted_exec_us.iter().copied());
        samples.percentile(p)
    }

    /// The empirical CDF, thinned to at most `max_points` — the series
    /// Figure 6 plots.
    pub fn cdf(&self, max_points: usize) -> Vec<(u64, f64)> {
        jgre_sim::Samples::from_values(self.sorted_exec_us.iter().copied()).cdf(max_points)
    }

    /// Plain-text summary.
    pub fn render(&self) -> String {
        format!(
            "Figure 6 — execution-time CDF over {} interfaces × {} calls\n\
             p10 {}µs, p50 {}µs, p90 {}µs, p100 {}µs (paper envelope: 0–8000µs)\n",
            self.interfaces,
            self.calls_per_interface,
            self.percentile(10),
            self.percentile(50),
            self.percentile(90),
            self.percentile(100),
        )
    }
}

/// Regenerates Figure 6: 1000 calls per vulnerable interface (the paper's
/// protocol), collecting every execution time.
pub fn fig6(scale: ExperimentScale, calls_per_interface: usize) -> Fig6 {
    let spec = AospSpec::android_6_0_1();
    let vectors = AttackVector::service_vectors(&spec);
    let mut exec = Vec::with_capacity(vectors.len() * calls_per_interface);
    // One shared device: 54 × calls stays far from the cap at paper scale
    // when `calls_per_interface` is the paper's 1000 ... but not at quick
    // scale, so each interface gets a fresh device there.
    for vector in &vectors {
        let mut system = System::boot_with(scale.system_config());
        let app = system.install_app("com.prober", vector.permissions.iter().copied());
        for _ in 0..calls_per_interface {
            let o = system
                .call_service(app, &vector.service, &vector.method, vector.call_options())
                .expect("probe calls succeed");
            if o.host_aborted {
                break;
            }
            exec.push(o.exec_time.as_micros());
        }
    }
    exec.sort_unstable();
    Fig6 {
        sorted_exec_us: exec,
        interfaces: vectors.len(),
        calls_per_interface,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_ordering_holds_at_quick_scale() {
        let f = fig3(ExperimentScale::quick());
        assert_eq!(f.series.len(), 54);
        // Shrinking the table shrinks the slope term quadratically but the
        // base term only linearly, so near-ties at the fast end may swap;
        // the paper's extremes still hold up to that tolerance: the audio
        // route watcher is among the fastest, the toast is the slowest.
        assert_eq!(f.series[0].interface, "audio.startWatchingRoutes");
        assert_eq!(
            f.series.last().unwrap().interface,
            "notification.enqueueToast"
        );
        // At 1/16 scale the slope term (which carries most of the paper's
        // 18× spread) shrinks quadratically, so only a compressed spread
        // remains; the full ratio is validated at paper scale by the
        // fig3 bench (see EXPERIMENTS.md).
        let ratio = f.slowest_secs() / f.fastest_secs();
        assert!((2.0..30.0).contains(&ratio), "spread ratio {ratio}");
        // Every curve climbs to the cap.
        for s in &f.series {
            let max = s.points.iter().map(|(_, j)| *j).max().unwrap_or(0);
            assert!(
                max as f64 >= f.capacity as f64 * 0.9,
                "{} stopped at {max}",
                s.interface
            );
        }
    }

    #[test]
    fn fig5_shows_growth() {
        let f = fig5(ExperimentScale::quick());
        assert!(f.points.len() > 100);
        assert!(
            f.growth_factor() > 1.2,
            "execution time must grow with stored entries, factor {}",
            f.growth_factor()
        );
    }

    #[test]
    fn fig6_envelope_matches_paper() {
        let f = fig6(ExperimentScale::quick(), 200);
        assert!(f.percentile(100) < 11_000, "p100 {}", f.percentile(100));
        assert!(f.percentile(50) < 5_000, "p50 {}", f.percentile(50));
        assert!(f.render().contains("CDF"));
        let cdf = f.cdf(100);
        assert!(cdf.len() <= 101 && !cdf.is_empty());
        assert_eq!(cdf.last().unwrap().1, 1.0, "CDF reaches 1");
    }
}
