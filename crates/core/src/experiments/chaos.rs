//! The robustness matrix: seeded fault injection against the hardened
//! defender.
//!
//! Each cell of the matrix drives one attack vector against a defended
//! device while exactly one fault channel is active at one intensity
//! (plus a fault-free baseline per attack), then checks the recovery
//! invariants:
//!
//! * a detection pass never kills more than `max_kills` apps;
//! * the benign bystander is never killed at or below moderate intensity;
//! * the fault-free baseline detects, top-ranks the attacker, and drains
//!   the table with full confidence;
//! * at or below moderate intensity, detection still converges and the
//!   attacker still dies;
//! * a pass that leaves the table saturated must say so
//!   ([`DetectionOutcome::Degraded`]) — silent failure is itself a
//!   violation;
//! * the defender process itself is mortal: every cell runs the
//!   crash-consistent harness (journal + checkpoint + supervised
//!   restarts), and the `defender-crash` channel kills it mid-pass; at or
//!   below moderate intensity it must recover and still converge, and
//!   the supervisor must never exhaust its restart budget.
//!
//! Everything is a pure function of `(seed, matrix shape)`: two runs with
//! the same seed produce byte-identical JSON.

use std::fmt::Write as _;
use std::rc::Rc;

use jgre_attack::AttackVector;
use jgre_corpus::spec::AospSpec;
use jgre_defense::{
    CrashConsistentConfig, CrashConsistentDefender, DetectionOutcome, MemoryStore, ScoringKind,
};
use jgre_framework::{CallOptions, System, SystemConfig};
use jgre_sim::{FaultIntensity, FaultKind, FaultPlan, SimDuration};
use serde::{Deserialize, Serialize};

use crate::ExperimentScale;

/// The attacks the matrix exercises: one fast interface (single-window
/// detection) and one slow Delay interface (forces window escalation).
pub const CHAOS_ATTACKS: [(&str, &str); 2] = [
    ("clipboard", "addPrimaryClipChangedListener"),
    ("midi", "registerDeviceServer"),
];

/// One attack × fault × intensity run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCell {
    /// `service.method` attacked.
    pub attack: String,
    /// Fault channel name (`"none"` for the baseline).
    pub fault: String,
    /// Intensity name (`"off"` for the baseline).
    pub intensity: String,
    /// Whether any detection pass completed within the call budget.
    pub detected: bool,
    /// Whether the first detection reported reduced confidence.
    pub degraded: bool,
    /// Degradation causes of the first detection, rendered.
    pub causes: Vec<String>,
    /// Which ranking the first detection used.
    pub scoring: Option<ScoringKind>,
    /// IPC-log coverage the first detection observed.
    pub coverage: Option<f64>,
    /// Correlation rounds of the first detection.
    pub rounds: usize,
    /// Whether the attacker was killed by any pass.
    pub attacker_killed: bool,
    /// Whether the benign bystander was killed by any pass.
    pub benign_killed: bool,
    /// Largest kill list of any single pass.
    pub max_kills_per_pass: usize,
    /// Whether the victim's table ended below the normal level.
    pub table_drained: bool,
    /// Victim table size after the last pass.
    pub victim_jgr_after: Option<usize>,
    /// First detection's modeled response delay, µs.
    pub response_delay_us: Option<u64>,
    /// Detection passes completed.
    pub passes: usize,
    /// Attacker calls issued.
    pub calls_issued: u64,
    /// Fault events the injector actually fired.
    pub fault_events: u64,
    /// Times the defender process crashed (the `defender-crash` channel).
    pub defender_crashes: u64,
    /// Times the supervisor restarted it.
    pub defender_restarts: u64,
    /// Whether the supervisor exhausted its restart budget.
    pub defender_gave_up: bool,
    /// Journal records replayed across all recoveries.
    pub replayed_records: u64,
    /// Virtual time spent crashed (backoff + replay), µs.
    pub recovery_delay_us: u64,
    /// Recovery invariants this cell broke (empty = healthy).
    pub violations: Vec<String>,
}

/// The full fault matrix with its seed and verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosMatrix {
    /// Seed every cell derives its RNG streams from.
    pub seed: u64,
    /// Table capacity the cells ran at.
    pub jgr_capacity: usize,
    /// Kill budget per detection pass.
    pub max_kills: usize,
    /// All cells, in deterministic (attack, fault, intensity) order.
    pub cells: Vec<ChaosCell>,
    /// Total invariant violations across cells.
    pub violations: usize,
}

impl ChaosMatrix {
    /// Plain-text summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Chaos matrix — seed {}, {} cells, {} invariant violation(s)\n",
            self.seed,
            self.cells.len(),
            self.violations
        );
        let _ = writeln!(
            out,
            "{:<42} {:<14} {:<9} {:>4} {:>5} {:>6}  outcome",
            "attack", "fault", "intensity", "det", "kill", "cover"
        );
        for c in &self.cells {
            let mut outcome = if !c.violations.is_empty() {
                format!("VIOLATION: {}", c.violations.join("; "))
            } else if c.degraded {
                format!("degraded ({})", c.causes.join("; "))
            } else if c.detected {
                "full".to_owned()
            } else {
                "no detection".to_owned()
            };
            if c.defender_crashes > 0 {
                let _ = write!(
                    outcome,
                    " [defender crashed ×{}, {}]",
                    c.defender_crashes,
                    if c.defender_gave_up {
                        "gave up".to_owned()
                    } else {
                        format!("recovered in {} µs", c.recovery_delay_us)
                    }
                );
            }
            let _ = writeln!(
                out,
                "{:<42} {:<14} {:<9} {:>4} {:>5} {:>6}  {}",
                c.attack,
                c.fault,
                c.intensity,
                if c.detected { "yes" } else { "no" },
                if c.attacker_killed { "mal" } else { "-" },
                c.coverage
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".to_owned()),
                outcome
            );
        }
        out
    }
}

/// Runs the full matrix: for each attack, a fault-free baseline plus every
/// `FaultKind` at every active intensity.
pub fn chaos_matrix(scale: ExperimentScale, only_fault: Option<FaultKind>) -> ChaosMatrix {
    let spec = AospSpec::android_6_0_1();
    let mut cells = Vec::new();
    for (service, method) in CHAOS_ATTACKS {
        let vector = AttackVector::service_vectors(&spec)
            .into_iter()
            .find(|v| v.service == service && v.method == method)
            .unwrap_or_else(|| panic!("{service}.{method} is a known vector"));
        cells.push(run_cell(scale, &vector, None, FaultIntensity::Off));
        for kind in FaultKind::ALL {
            if only_fault.is_some_and(|f| f != kind) {
                continue;
            }
            for intensity in FaultIntensity::ACTIVE {
                cells.push(run_cell(scale, &vector, Some(kind), intensity));
            }
        }
    }
    let violations = cells.iter().map(|c| c.violations.len()).sum();
    ChaosMatrix {
        seed: scale.seed,
        jgr_capacity: scale.jgr_capacity,
        max_kills: scale.defender_config().max_kills,
        cells,
        violations,
    }
}

/// The cell identifiers (`attack/fault/intensity`) the matrix would run,
/// in run order, without running anything (`jgre chaos --list-cells`).
pub fn chaos_cell_ids(only_fault: Option<FaultKind>) -> Vec<String> {
    let mut ids = Vec::new();
    for (service, method) in CHAOS_ATTACKS {
        ids.push(format!("{service}.{method}/none/off"));
        for kind in FaultKind::ALL {
            if only_fault.is_some_and(|f| f != kind) {
                continue;
            }
            for intensity in FaultIntensity::ACTIVE {
                ids.push(format!(
                    "{service}.{method}/{}/{}",
                    kind.name(),
                    intensity.name()
                ));
            }
        }
    }
    ids
}

/// The defender configuration the chaos cells run with: the scale's
/// thresholds plus alarm hysteresis, so an unkillable attacker cannot
/// drive a kill storm while the cell keeps calling.
fn chaos_defender_config(scale: ExperimentScale) -> jgre_defense::DefenderConfig {
    jgre_defense::DefenderConfig {
        cooldown: SimDuration::from_millis(100),
        ..scale.defender_config()
    }
}

fn run_cell(
    scale: ExperimentScale,
    vector: &AttackVector,
    kind: Option<FaultKind>,
    intensity: FaultIntensity,
) -> ChaosCell {
    let plan = match kind {
        Some(kind) => FaultPlan::single(kind, intensity),
        None => FaultPlan::none(),
    };
    // Decorrelate cells without consulting wall-clock or global state:
    // the cell's seed folds in its matrix coordinates.
    let cell_seed = scale
        .seed
        .wrapping_add(kind.map_or(0, |k| (k as u64 + 1) << 8))
        .wrapping_add(intensity as u64 + 1)
        .wrapping_add(vector.service.len() as u64) // differs per attack
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut system = System::boot_with(SystemConfig {
        faults: plan,
        ..scale.with_seed(cell_seed).system_config()
    });
    // Every cell runs the crash-consistent harness (journal + checkpoint
    // + supervised restarts). With the crash channel quiet this is
    // byte-identical in timing and RNG consumption to the raw defender;
    // with it active, the cell gains the crash dimension.
    let mut defender = CrashConsistentDefender::install(
        &mut system,
        CrashConsistentConfig {
            defender: chaos_defender_config(scale),
            ..CrashConsistentConfig::default()
        },
        Rc::new(MemoryStore::new()),
    )
    .expect("chaos defender config is valid");
    let mal = system.install_app("com.chaos.attacker", vector.permissions.iter().copied());
    let benign = system.install_app("com.chaos.benign", []);

    let budget = scale.jgr_capacity as u64 * 4;
    let mut calls_issued = 0u64;
    let mut outcomes: Vec<DetectionOutcome> = Vec::new();
    let mut victim_died = false;
    for i in 0..budget {
        match system.call_service(mal, &vector.service, &vector.method, vector.call_options()) {
            Ok(o) => {
                calls_issued += 1;
                if o.host_aborted {
                    victim_died = true;
                    break;
                }
            }
            Err(_) => {
                victim_died = true;
                break;
            }
        }
        // An innocent bystander shares the device: a no-JGR method, one
        // call per three attacker calls.
        if i % 3 == 0 {
            let _ = system.call_service(benign, "clipboard", "getState", CallOptions::default());
        }
        if let Some(d) = defender.poll(&mut system) {
            outcomes.push(d);
            // One extra pass budget: keep calling briefly after the first
            // detection only when the kill failed, to observe hysteresis;
            // otherwise the cell's question is answered.
            if outcomes.len() >= 3 || outcomes.last().is_some_and(|d| !d.killed.is_empty()) {
                break;
            }
        }
        // A crash can swallow the very pass that killed the attacker
        // (the outcome dies with the process); the ground truth is the
        // process table.
        if system.pid_of(mal).is_none() {
            break;
        }
    }

    let recovery = defender.stats();
    let first = outcomes.first();
    let attacker_killed = outcomes.iter().any(|d| d.killed.contains(&mal))
        || (calls_issued > 0 && system.pid_of(mal).is_none());
    let benign_killed = outcomes.iter().any(|d| d.killed.contains(&benign));
    let max_kills_per_pass = outcomes.iter().map(|d| d.killed.len()).max().unwrap_or(0);
    let victim_jgr_after = outcomes.last().and_then(|d| d.victim_jgr_after);
    let normal_level = scale.normal_level;
    let table_drained = victim_jgr_after.is_some_and(|n| n < normal_level);
    let degraded = first.is_some_and(|d| d.is_degraded());

    let mut violations = Vec::new();
    let config = chaos_defender_config(scale);
    if victim_died {
        violations.push("victim exhausted before detection".to_owned());
    }
    if max_kills_per_pass > config.max_kills {
        violations.push(format!(
            "a pass killed {max_kills_per_pass} apps, budget {}",
            config.max_kills
        ));
    }
    let at_most_moderate = intensity <= FaultIntensity::Moderate;
    if benign_killed && at_most_moderate {
        violations.push("benign app killed at ≤ moderate intensity".to_owned());
    }
    if recovery.gave_up && at_most_moderate {
        violations.push("supervisor gave up at ≤ moderate intensity".to_owned());
    }
    if kind == Some(FaultKind::DefenderCrash) && intensity != FaultIntensity::Off {
        // The crash dimension must be exercised, not just configured.
        if recovery.crashes == 0 {
            violations.push("crash channel active but the defender never crashed".to_owned());
        }
        if recovery.crashes > 0 && recovery.truncated_bytes == 0 {
            violations.push("crash left no torn tail for reopen to truncate".to_owned());
        }
    }
    if at_most_moderate {
        if first.is_none() {
            violations.push("no detection within the call budget".to_owned());
        }
        if !attacker_killed {
            violations.push("attacker survived at ≤ moderate intensity".to_owned());
        }
        if !table_drained && !outcomes.iter().any(|d| d.is_degraded()) {
            violations.push("table not drained and no pass admitted it".to_owned());
        }
    }
    if kind.is_none() {
        // Baseline must reproduce the paper's shape with full confidence.
        if degraded {
            violations.push("fault-free baseline reported degraded".to_owned());
        }
        if first.is_some_and(|d| d.scores.first().map(|s| s.uid) != Some(mal)) {
            violations.push("fault-free baseline did not top-rank the attacker".to_owned());
        }
        if !table_drained {
            violations.push("fault-free baseline did not drain the table".to_owned());
        }
    }

    ChaosCell {
        attack: format!("{}.{}", vector.service, vector.method),
        fault: kind.map_or("none", FaultKind::name).to_owned(),
        intensity: intensity.name().to_owned(),
        detected: first.is_some(),
        degraded,
        causes: first
            .map(|d| d.causes().iter().map(|c| c.to_string()).collect())
            .unwrap_or_default(),
        scoring: first.map(|d| d.scoring),
        coverage: first.map(|d| d.coverage),
        rounds: first.map(|d| d.rounds).unwrap_or(0),
        attacker_killed,
        benign_killed,
        max_kills_per_pass,
        table_drained,
        victim_jgr_after,
        response_delay_us: first.map(|d| d.response_delay.as_micros()),
        passes: outcomes.len(),
        calls_issued,
        fault_events: system.faults().stats().total(),
        defender_crashes: recovery.crashes,
        defender_restarts: recovery.restarts,
        defender_gave_up: recovery.gave_up,
        replayed_records: recovery.replayed_records,
        recovery_delay_us: recovery.recovery_delay_us,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_cells_reproduce_the_paper_shape() {
        let m = chaos_matrix(ExperimentScale::quick(), Some(FaultKind::KillFail));
        let baselines: Vec<&ChaosCell> = m.cells.iter().filter(|c| c.fault == "none").collect();
        assert_eq!(baselines.len(), 2);
        for c in baselines {
            assert!(c.detected && c.attacker_killed && c.table_drained, "{c:?}");
            assert!(!c.degraded && !c.benign_killed, "{c:?}");
            assert_eq!(c.scoring, Some(ScoringKind::SegmentTree));
        }
    }

    #[test]
    fn moderate_faults_never_violate_invariants() {
        let m = chaos_matrix(ExperimentScale::quick(), None);
        let broken: Vec<&ChaosCell> = m
            .cells
            .iter()
            .filter(|c| !c.violations.is_empty())
            .collect();
        assert!(broken.is_empty(), "violated cells: {broken:#?}");
        // The headline degradations actually happen somewhere in the
        // matrix — the ladder is exercised, not just defined.
        assert!(
            m.cells
                .iter()
                .any(|c| c.scoring == Some(ScoringKind::CallCount)),
            "no cell fell back to call-count scoring"
        );
        assert!(
            m.cells.iter().any(|c| c.degraded),
            "no cell reported degradation"
        );
    }

    #[test]
    fn defender_crash_cells_crash_and_recover() {
        let m = chaos_matrix(ExperimentScale::quick(), Some(FaultKind::DefenderCrash));
        let crashed: Vec<&ChaosCell> = m
            .cells
            .iter()
            .filter(|c| c.fault == "defender-crash")
            .collect();
        assert_eq!(crashed.len(), 6, "2 attacks × 3 intensities");
        for c in &crashed {
            assert!(c.defender_crashes > 0, "channel must fire: {c:?}");
            assert!(c.violations.is_empty(), "{c:?}");
        }
        for c in crashed.iter().filter(|c| c.intensity != "severe") {
            assert!(c.attacker_killed, "{c:?}");
            assert!(!c.defender_gave_up, "{c:?}");
            assert!(c.defender_restarts > 0, "{c:?}");
            assert!(c.recovery_delay_us > 0, "recovery is not free: {c:?}");
        }
    }

    #[test]
    fn cell_ids_match_the_matrix_without_running_it() {
        let ids = chaos_cell_ids(None);
        let m = chaos_matrix(ExperimentScale::quick(), Some(FaultKind::KillFail));
        // Full listing: 2 attacks × (1 baseline + 10 kinds × 3 intensities).
        assert_eq!(ids.len(), 62);
        assert!(ids.contains(&"clipboard.addPrimaryClipChangedListener/none/off".to_owned()));
        assert!(ids.contains(&"midi.registerDeviceServer/defender-crash/severe".to_owned()));
        // Filtered listing lines up 1:1 with a filtered run.
        let filtered = chaos_cell_ids(Some(FaultKind::KillFail));
        assert_eq!(filtered.len(), m.cells.len());
        for (id, cell) in filtered.iter().zip(&m.cells) {
            assert_eq!(
                id,
                &format!("{}/{}/{}", cell.attack, cell.fault, cell.intensity)
            );
        }
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let a = chaos_matrix(ExperimentScale::quick(), Some(FaultKind::IpcDrop));
        let b = chaos_matrix(ExperimentScale::quick(), Some(FaultKind::IpcDrop));
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c = chaos_matrix(
            ExperimentScale::quick().with_seed(99),
            Some(FaultKind::IpcDrop),
        );
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap(),
            "a different seed must actually change the run"
        );
    }
}
