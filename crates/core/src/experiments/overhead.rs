//! Figure 10 — the defense's per-IPC recording overhead.

use std::fmt::Write as _;

use jgre_binder::{BinderDriver, Parcel};
use jgre_sim::{Pid, SimClock, TraceSink, Uid};
use serde::{Deserialize, Serialize};

use crate::ExperimentScale;

/// One payload point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Payload size in KiB.
    pub payload_kib: usize,
    /// Stock transaction latency, µs.
    pub stock_us: u64,
    /// Latency with defense recording, µs.
    pub defended_us: u64,
}

/// Figure 10: IPC latency vs payload, stock vs defended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig10 {
    /// The sweep (1 KiB increments, as in the paper's 500 rounds).
    pub rows: Vec<Fig10Row>,
}

impl Fig10 {
    /// Maximum added latency across the sweep, µs (paper: ≤1247 µs).
    pub fn max_added_us(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.defended_us - r.stock_us)
            .max()
            .unwrap_or(0)
    }

    /// Mean relative overhead (paper: ≈46.7 %).
    pub fn mean_overhead(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|r| (r.defended_us as f64 - r.stock_us as f64) / r.stock_us as f64)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Plain-text summary.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 10 — IPC latency vs payload (stock / defended)\n");
        for r in self.rows.iter().step_by(50.max(self.rows.len() / 10)) {
            let _ = writeln!(
                out,
                "{:>4} KiB: {:>6}µs / {:>6}µs",
                r.payload_kib, r.stock_us, r.defended_us
            );
        }
        let _ = writeln!(
            out,
            "max added: {}µs (paper ≤1247µs); mean overhead: {:.1}% (paper ≈46.7%)",
            self.max_added_us(),
            self.mean_overhead() * 100.0
        );
        out
    }
}

/// Regenerates Figure 10: `rounds` byte-array deliveries, payload growing
/// by 1 KiB per round, measured against the driver with recording off and
/// on.
pub fn fig10(scale: ExperimentScale, rounds: usize) -> Fig10 {
    let _ = scale;
    let mut rows = Vec::new();
    let measure = |defense: bool, kib: usize| -> u64 {
        let clock = SimClock::new();
        let mut driver = BinderDriver::new(clock.clone(), TraceSink::disabled());
        driver.set_defense_recording(defense);
        let node = driver.create_node(Pid::new(412), "echo");
        let mut parcel = Parcel::new();
        parcel.write_blob(kib * 1024);
        let before = clock.now();
        driver
            .record_transaction(
                Pid::new(9000),
                Uid::new(10_000),
                node,
                "IEcho",
                "deliver",
                &parcel,
            )
            .expect("node is alive");
        (clock.now() - before).as_micros()
    };
    for round in 0..rounds {
        let kib = round + 1;
        rows.push(Fig10Row {
            payload_kib: kib,
            stock_us: measure(false, kib),
            defended_us: measure(true, kib),
        });
    }
    Fig10 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_paper_bounds() {
        let f = fig10(ExperimentScale::quick(), 500);
        assert_eq!(f.rows.len(), 500);
        assert!(f.max_added_us() <= 1_247, "max added {}", f.max_added_us());
        let pct = f.mean_overhead() * 100.0;
        assert!((40.0..52.0).contains(&pct), "overhead {pct:.1}%");
        // Latency grows with payload in both series.
        assert!(f.rows.last().unwrap().stock_us > f.rows.first().unwrap().stock_us);
        assert!(f.render().contains("46.7%"));
    }
}
