//! Figures 8/9, §V-C effectiveness, and §V-D.1 response delays.

use std::fmt::Write as _;

use jgre_attack::{run_interleaved, Actor, ActorKind, AttackVector};
use jgre_corpus::spec::AospSpec;
use jgre_defense::{DetectionOutcome, JgreDefender};
use jgre_framework::{FrameworkError, System};
use jgre_sim::{SimDuration, Uid};
use serde::{Deserialize, Serialize};

use crate::ExperimentScale;

/// Result of one defended attack run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefendedAttack {
    /// The interface attacked.
    pub interface: String,
    /// Whether the victim survived (no abort before detection).
    pub victim_survived: bool,
    /// The detection, if the alarm fired.
    pub detection: Option<DetectionOutcome>,
    /// Whether the attacker was among the killed apps.
    pub attacker_killed: bool,
}

/// Drives `vector` against a defended device, polling the defender after
/// every call, until detection or `max_calls`.
pub fn run_defended_attack(
    system: &mut System,
    defender: &JgreDefender,
    vector: &AttackVector,
    max_calls: u64,
) -> DefendedAttack {
    let mal = system.install_app(
        format!("com.malware.{}.{}", vector.service, vector.method),
        vector.permissions.iter().copied(),
    );
    let mut victim_survived = true;
    let mut detection = None;
    for _ in 0..max_calls {
        match system.call_service(mal, &vector.service, &vector.method, vector.call_options()) {
            Ok(o) => {
                if o.host_aborted {
                    victim_survived = false;
                    break;
                }
            }
            Err(FrameworkError::ServiceDead | FrameworkError::UnknownService(_)) => {
                victim_survived = false;
                break;
            }
            Err(e) => panic!("defended attack {}.{}: {e}", vector.service, vector.method),
        }
        if let Some(d) = defender.poll(system) {
            detection = Some(d);
            break;
        }
    }
    let attacker_killed = detection
        .as_ref()
        .map(|d| d.killed.contains(&mal))
        .unwrap_or(false);
    DefendedAttack {
        interface: format!("{}.{}", vector.service, vector.method),
        victim_survived,
        detection,
        attacker_killed,
    }
}

/// §V-C: the defense must stop all 57 identified attacks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseEffectiveness {
    /// One row per vector.
    pub runs: Vec<DefendedAttack>,
    /// Vectors where the victim survived *and* the attacker was killed.
    pub defended: usize,
}

impl DefenseEffectiveness {
    /// Plain-text summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Defense effectiveness — {}/{} attacks stopped\n",
            self.defended,
            self.runs.len()
        );
        for r in &self.runs {
            let _ = writeln!(
                out,
                "{}  {}",
                if r.victim_survived && r.attacker_killed {
                    "DEFENDED"
                } else {
                    "FAILED  "
                },
                r.interface
            );
        }
        out
    }
}

/// Runs every one of the 57 vectors against a defended device.
pub fn defense_effectiveness(scale: ExperimentScale) -> DefenseEffectiveness {
    let spec = AospSpec::android_6_0_1();
    let mut runs = Vec::new();
    for vector in AttackVector::all_vectors(&spec) {
        let mut system = System::boot_with(scale.system_config());
        let defender = JgreDefender::install(&mut system, scale.defender_config())
            .expect("scale presets produce a valid defender config");
        let run = run_defended_attack(
            &mut system,
            &defender,
            &vector,
            scale.jgr_capacity as u64 * 4,
        );
        runs.push(run);
    }
    let defended = runs
        .iter()
        .filter(|r| r.victim_survived && r.attacker_killed)
        .count();
    DefenseEffectiveness { runs, defended }
}

/// One §V-D.1 row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseDelayRow {
    /// Interface attacked.
    pub interface: String,
    /// Modeled on-device detection delay.
    pub response_delay_us: u64,
    /// Correlation rounds needed.
    pub rounds: usize,
}

/// §V-D.1: detection delays across all 57 vulnerable interfaces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseDelay {
    /// Per-interface rows, slowest first.
    pub rows: Vec<ResponseDelayRow>,
}

impl ResponseDelay {
    /// Rows above one second.
    pub fn above_one_second(&self) -> Vec<&ResponseDelayRow> {
        self.rows
            .iter()
            .filter(|r| r.response_delay_us > 1_000_000)
            .collect()
    }

    /// The slowest row.
    ///
    /// # Panics
    ///
    /// Panics when no rows were produced.
    pub fn slowest(&self) -> &ResponseDelayRow {
        self.rows.first().expect("at least one interface ran")
    }

    /// Plain-text summary.
    pub fn render(&self) -> String {
        let mut out = String::from("Response delays (§V-D.1), slowest first\n");
        for r in self.rows.iter().take(10) {
            let _ = writeln!(
                out,
                "{:>10.3}s  {} rounds  {}",
                r.response_delay_us as f64 / 1e6,
                r.rounds,
                r.interface
            );
        }
        let mut samples: jgre_sim::Samples =
            self.rows.iter().map(|r| r.response_delay_us).collect();
        if let Some(summary) = samples.summary() {
            let _ = writeln!(
                out,
                "... {} interfaces total, {} above 1s; median {:.3}s, mean {:.3}s, max {:.3}s",
                self.rows.len(),
                self.above_one_second().len(),
                summary.median as f64 / 1e6,
                summary.mean / 1e6,
                summary.max as f64 / 1e6,
            );
        }
        out
    }
}

/// Measures the detection delay for every vector.
pub fn response_delay(scale: ExperimentScale) -> ResponseDelay {
    let spec = AospSpec::android_6_0_1();
    let mut rows = Vec::new();
    for vector in AttackVector::all_vectors(&spec) {
        let mut system = System::boot_with(scale.system_config());
        let defender = JgreDefender::install(&mut system, scale.defender_config())
            .expect("scale presets produce a valid defender config");
        let run = run_defended_attack(
            &mut system,
            &defender,
            &vector,
            scale.jgr_capacity as u64 * 4,
        );
        if let Some(d) = run.detection {
            rows.push(ResponseDelayRow {
                interface: run.interface,
                response_delay_us: d.response_delay.as_micros(),
                rounds: d.rounds,
            });
        }
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.response_delay_us));
    ResponseDelay { rows }
}

/// One Figure 8 point: attacker score vs the best benign score while that
/// attacker was active.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Vulnerability index (paper's X axis).
    pub index: usize,
    /// Interface.
    pub interface: String,
    /// The malicious app's suspicious-IPC count.
    pub malicious_score: u64,
    /// The best-scoring benign app's count.
    pub top_benign_score: u64,
}

/// Figure 8.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig8 {
    /// One row per known vulnerability.
    pub rows: Vec<Fig8Row>,
}

impl Fig8 {
    /// Fraction of rows where the attacker strictly outscores every
    /// benign app.
    pub fn separation_rate(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .filter(|r| r.malicious_score > r.top_benign_score)
            .count() as f64
            / self.rows.len() as f64
    }

    /// Plain-text summary.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 8 — suspicious IPC calls: malicious vs top benign (Δ=1.8ms)\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "#{:02}  mal {:>6}  benign {:>6}  {}",
                r.index, r.malicious_score, r.top_benign_score, r.interface
            );
        }
        let _ = writeln!(out, "separation: {:.0}%", self.separation_rate() * 100.0);
        out
    }
}

/// Regenerates Figure 8: for each known vulnerability, one attacker runs
/// against `benign_apps` chatty benign apps; the defender's scores are
/// read at alarm time.
pub fn fig8(scale: ExperimentScale, benign_apps: usize, vectors_limit: usize) -> Fig8 {
    let spec = AospSpec::android_6_0_1();
    let mut rows = Vec::new();
    for (index, vector) in AttackVector::service_vectors(&spec)
        .into_iter()
        .take(vectors_limit)
        .enumerate()
    {
        let mut system = System::boot_with(scale.system_config());
        let defender = JgreDefender::install(&mut system, scale.defender_config())
            .expect("scale presets produce a valid defender config");
        let mal = system.install_app("com.malware", vector.permissions.iter().copied());
        let mut actors = vec![Actor {
            uid: mal,
            kind: ActorKind::Attacker(vector.clone()),
        }];
        for b in 0..benign_apps {
            let uid = system.install_app(format!("com.benign{b}"), []);
            actors.push(Actor {
                uid,
                kind: ActorKind::ChattyBenign {
                    max_gap: SimDuration::from_millis(100),
                },
            });
        }
        // Run in slices, polling for the alarm between slices.
        let victim = system
            .service_info(&vector.service)
            .expect("vector targets a registered service")
            .host;
        let mut scores = None;
        for _ in 0..10_000 {
            run_interleaved(
                &mut system,
                actors.clone(),
                SimDuration::from_millis(500),
                scale.seed ^ index as u64,
                true,
            );
            if !defender.monitor().alarmed_pids().is_empty() {
                scores = defender.score_only(&system, victim, scale.default_delta());
                break;
            }
        }
        let Some(report) = scores else {
            continue;
        };
        let malicious_score = report
            .scores
            .iter()
            .find(|s| s.uid == mal)
            .map(|s| s.score)
            .unwrap_or(0);
        let top_benign_score = report
            .scores
            .iter()
            .filter(|s| s.uid != mal)
            .map(|s| s.score)
            .max()
            .unwrap_or(0);
        rows.push(Fig8Row {
            index,
            interface: format!("{}.{}", vector.service, vector.method),
            malicious_score,
            top_benign_score,
        });
    }
    Fig8 { rows }
}

/// One Figure 9 row: an app's suspicious-call count at one Δ.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Δ in microseconds.
    pub delta_us: u64,
    /// App uid.
    pub uid: Uid,
    /// Whether the app is one of the colluding attackers.
    pub malicious: bool,
    /// Suspicious-IPC count.
    pub score: u64,
}

/// Figure 9: four colluding attackers + one chatty benign app, scored at
/// three Δ values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig9 {
    /// Top-5 rows per Δ.
    pub rows: Vec<Fig9Row>,
    /// The Δ values swept.
    pub deltas_us: Vec<u64>,
}

impl Fig9 {
    /// For a given Δ, whether the four malicious apps occupy the top four
    /// ranks.
    pub fn top4_all_malicious(&self, delta_us: u64) -> bool {
        let mut at_delta: Vec<&Fig9Row> = self
            .rows
            .iter()
            .filter(|r| r.delta_us == delta_us)
            .collect();
        at_delta.sort_by_key(|r| std::cmp::Reverse(r.score));
        at_delta.iter().take(4).all(|r| r.malicious)
    }

    /// Plain-text summary.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 9 — colluding attackers, Δ sweep\n");
        for &delta in &self.deltas_us {
            let _ = writeln!(out, "Δ = {delta}µs:");
            let mut at: Vec<&Fig9Row> = self.rows.iter().filter(|r| r.delta_us == delta).collect();
            at.sort_by_key(|r| std::cmp::Reverse(r.score));
            for r in at.iter().take(5) {
                let _ = writeln!(
                    out,
                    "  {}: {:>6} suspicious calls ({})",
                    r.uid,
                    r.score,
                    if r.malicious { "malicious" } else { "benign" }
                );
            }
        }
        out
    }
}

/// Regenerates Figure 9.
pub fn fig9(scale: ExperimentScale) -> Fig9 {
    let deltas_us = vec![79u64, 1_900, 3_583];
    let spec = AospSpec::android_6_0_1();
    // Four colluding attackers on different zero-permission interfaces.
    // The paper does not name its four; we use interfaces whose timing
    // deviation is moderate so the narrowest Δ (79 µs) in the sweep still
    // concentrates their votes, as in the published figure.
    let picks = [
        ("accessibility", "addClient"),
        ("mount", "registerListener"),
        ("textservices", "getSpellCheckerService"),
        ("input_method", "addClient"),
    ];
    let vectors: Vec<AttackVector> = picks
        .iter()
        .map(|(svc, method)| {
            AttackVector::service_vectors(&spec)
                .into_iter()
                .find(|v| &v.service == svc && &v.method == method)
                .expect("all four interfaces are vulnerable")
        })
        .collect();

    let mut system = System::boot_with(scale.system_config());
    let defender = JgreDefender::install(&mut system, scale.defender_config())
        .expect("scale presets produce a valid defender config");
    let mut malicious = Vec::new();
    let mut actors = Vec::new();
    for (i, v) in vectors.iter().enumerate() {
        let uid = system.install_app(format!("com.collude{i}"), v.permissions.iter().copied());
        malicious.push(uid);
        actors.push(Actor {
            uid,
            kind: ActorKind::Attacker(v.clone()),
        });
    }
    let benign = system.install_app("com.benign.chatty", []);
    actors.push(Actor {
        uid: benign,
        kind: ActorKind::ChattyBenign {
            max_gap: SimDuration::from_millis(100),
        },
    });
    let victim = system.system_server_pid();
    for _ in 0..10_000 {
        run_interleaved(
            &mut system,
            actors.clone(),
            SimDuration::from_millis(500),
            scale.seed,
            true,
        );
        if !defender.monitor().alarmed_pids().is_empty() {
            break;
        }
    }
    let mut rows = Vec::new();
    for &delta in &deltas_us {
        if let Some(report) = defender.score_only(&system, victim, SimDuration::from_micros(delta))
        {
            for s in &report.scores {
                rows.push(Fig9Row {
                    delta_us: delta,
                    uid: s.uid,
                    malicious: malicious.contains(&s.uid),
                    score: s.score,
                });
            }
        }
    }
    Fig9 { rows, deltas_us }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defense_stops_every_vector_at_quick_scale() {
        let e = defense_effectiveness(ExperimentScale::quick());
        assert_eq!(e.runs.len(), 57);
        assert_eq!(
            e.defended,
            57,
            "failed: {:?}",
            e.runs
                .iter()
                .filter(|r| !(r.victim_survived && r.attacker_killed))
                .map(|r| r.interface.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn response_delay_shape() {
        let r = response_delay(ExperimentScale::quick());
        assert_eq!(r.rows.len(), 57);
        // Slow cases exist (multi-round) but detection is always far
        // faster than the fastest exhaustion (~100 s paper / ~1.5 s quick).
        assert!(r.slowest().rounds >= 1);
        for row in &r.rows {
            assert!(
                row.response_delay_us < 1_500_000,
                "{} took {}µs",
                row.interface,
                row.response_delay_us
            );
        }
    }

    #[test]
    fn fig9_top4_are_the_colluders() {
        let f = fig9(ExperimentScale::quick());
        for &delta in &f.deltas_us {
            assert!(
                f.top4_all_malicious(delta),
                "Δ={delta}: top-4 not all malicious\n{}",
                f.render()
            );
        }
    }

    #[test]
    fn fig8_separates_malicious_from_benign() {
        let f = fig8(ExperimentScale::quick(), 3, 8);
        assert!(!f.rows.is_empty());
        assert!(
            f.separation_rate() >= 0.99,
            "separation {:.2}\n{}",
            f.separation_rate(),
            f.render()
        );
    }
}
