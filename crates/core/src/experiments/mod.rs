//! One runner per table and figure of the paper's evaluation.
//!
//! Each runner returns a serialisable result struct with a `render()`
//! method producing the human-readable table/series; the bench harness
//! also dumps them as JSON next to `EXPERIMENTS.md`.

mod analysis;
mod baseline;
mod chaos;
mod detection;
mod exhaustion;
mod overhead;
mod protections;

pub use analysis::{
    analysis_headline, table1, table4, table5, AnalysisHeadline, Table1, Table1Row, Table4,
    Table4Row, Table5, Table5Row,
};
pub use baseline::{fig4, Fig4};
pub use chaos::{chaos_cell_ids, chaos_matrix, ChaosCell, ChaosMatrix, CHAOS_ATTACKS};
pub use detection::{
    defense_effectiveness, fig8, fig9, response_delay, run_defended_attack, DefendedAttack,
    DefenseEffectiveness, Fig8, Fig8Row, Fig9, Fig9Row, ResponseDelay, ResponseDelayRow,
};
pub use exhaustion::{fig3, fig5, fig6, Fig3, Fig3Series, Fig5, Fig6};
pub use overhead::{fig10, Fig10, Fig10Row};
pub use protections::{table2, table3, Table2, Table2Row, Table3, Table3Row};
