//! T-ANALYSIS, Table I, Table IV, Table V — pipeline-derived results.

use std::fmt::Write as _;

use jgre_analysis::{Pipeline, ServiceKind, VerificationStatus, VerifierConfig};
use jgre_corpus::{spec::AospSpec, CodeModel};
use jgre_framework::System;
use serde::{Deserialize, Serialize};

use crate::ExperimentScale;

/// §IV headline numbers, re-derived by the pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisHeadline {
    /// System services discovered.
    pub services_total: usize,
    /// Native services among them.
    pub native_services: usize,
    /// Total IPC methods discovered.
    pub ipc_methods: usize,
    /// Native paths to `IndirectReferenceTable::Add`.
    pub native_paths_total: usize,
    /// Init-only paths filtered out.
    pub native_paths_init_only: usize,
    /// Confirmed vulnerable interfaces in system services.
    pub vulnerable_interfaces: usize,
    /// Distinct vulnerable system services.
    pub vulnerable_services: usize,
    /// Services attackable with zero permissions.
    pub zero_permission_services: usize,
    /// Confirmed vulnerable interfaces in prebuilt apps.
    pub prebuilt_interfaces: usize,
    /// Statically flagged third-party apps.
    pub third_party_apps: usize,
}

impl AnalysisHeadline {
    /// Plain-text summary.
    pub fn render(&self) -> String {
        format!(
            "T-ANALYSIS (paper §IV)\n\
             services analysed:        {} ({} native)\n\
             IPC methods discovered:   {}\n\
             native JGR paths:         {} total, {} init-only filtered\n\
             vulnerable interfaces:    {} in {} system services\n\
             zero-permission services: {}\n\
             prebuilt-app interfaces:  {}\n\
             third-party apps flagged: {}\n",
            self.services_total,
            self.native_services,
            self.ipc_methods,
            self.native_paths_total,
            self.native_paths_init_only,
            self.vulnerable_interfaces,
            self.vulnerable_services,
            self.zero_permission_services,
            self.prebuilt_interfaces,
            self.third_party_apps,
        )
    }
}

fn run_pipeline(scale: ExperimentScale) -> jgre_analysis::AnalysisReport {
    let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
    let mut device = System::boot_with(scale.system_config());
    Pipeline::new(model).run_full(
        &mut device,
        VerifierConfig {
            calls: 150,
            gc_every: 50,
        },
    )
}

/// Runs the four-step pipeline end to end and summarises §IV.
pub fn analysis_headline(scale: ExperimentScale) -> AnalysisHeadline {
    let report = run_pipeline(scale);
    AnalysisHeadline {
        services_total: report.services_total,
        native_services: report.native_services,
        ipc_methods: report.ipc_methods_total,
        native_paths_total: report.native_paths.total_paths,
        native_paths_init_only: report.native_paths.init_only_paths,
        vulnerable_interfaces: report.confirmed_service_interfaces().len(),
        vulnerable_services: report.confirmed_services().len(),
        zero_permission_services: report.zero_permission_services().len(),
        prebuilt_interfaces: report.confirmed_prebuilt_interfaces().len(),
        third_party_apps: report.third_party_interfaces().len(),
    }
}

/// One Table I row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Service name.
    pub service: String,
    /// Vulnerable interface (method).
    pub method: String,
    /// Required permission manifest names with protection levels.
    pub permissions: Vec<String>,
}

/// Table I: unprotected vulnerable IPC interfaces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1 {
    /// The rows, service-sorted.
    pub rows: Vec<Table1Row>,
    /// Permission split over services: (zero-perm, normal, dangerous).
    pub service_split: (usize, usize, usize),
}

impl Table1 {
    /// Plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table I — unprotected vulnerable IPC interfaces\n\
             service | interface | permission\n",
        );
        for r in &self.rows {
            let perms = if r.permissions.is_empty() {
                "-".to_owned()
            } else {
                r.permissions.join(", ")
            };
            let _ = writeln!(out, "{} | {} | {}", r.service, r.method, perms);
        }
        let _ = writeln!(
            out,
            "services: {} zero-permission, {} normal, {} dangerous",
            self.service_split.0, self.service_split.1, self.service_split.2
        );
        out
    }
}

/// Regenerates Table I from the pipeline output joined with the
/// ground-truth protection info (the paper's authors read the same from
/// the AOSP sources).
pub fn table1(scale: ExperimentScale) -> Table1 {
    use jgre_corpus::spec::{Protection, ProtectionLevel};
    let spec = AospSpec::android_6_0_1();
    let report = run_pipeline(scale);
    let mut rows = Vec::new();
    for row in report.confirmed_service_interfaces() {
        let unprotected = spec
            .service(&row.service)
            .and_then(|s| s.method(&row.method))
            .map(|m| matches!(m.protection, Protection::None))
            .unwrap_or(false);
        if unprotected {
            rows.push(Table1Row {
                service: row.service.clone(),
                method: row.method.clone(),
                permissions: row
                    .permissions
                    .iter()
                    .map(|p| format!("{} ({:?})", p.manifest_name(), p.level()))
                    .collect(),
            });
        }
    }
    rows.sort_by(|a, b| (&a.service, &a.method).cmp(&(&b.service, &b.method)));
    // Service-level split by least-privileged interface.
    let mut per_service: std::collections::BTreeMap<&str, usize> = Default::default();
    for r in &rows {
        let spec_m = spec
            .service(&r.service)
            .and_then(|s| s.method(&r.method))
            .expect("row came from the spec");
        let level = match spec_m.permission.map(|p| p.level()) {
            None => 0,
            Some(ProtectionLevel::Normal) => 1,
            Some(ProtectionLevel::Dangerous) => 2,
            Some(ProtectionLevel::Signature) => 3,
        };
        per_service
            .entry(r.service.as_str())
            .and_modify(|l| *l = (*l).min(level))
            .or_insert(level);
    }
    let split = per_service.values().fold((0, 0, 0), |acc, &l| match l {
        0 => (acc.0 + 1, acc.1, acc.2),
        1 => (acc.0, acc.1 + 1, acc.2),
        _ => (acc.0, acc.1, acc.2 + 1),
    });
    Table1 {
        rows,
        service_split: split,
    }
}

/// One Table IV row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4Row {
    /// App display name.
    pub app: String,
    /// AOSP code path.
    pub code_path: String,
    /// Vulnerable IPC method.
    pub method: String,
}

/// Table IV: vulnerable prebuilt core apps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4 {
    /// The rows.
    pub rows: Vec<Table4Row>,
    /// Prebuilt apps scanned (88).
    pub apps_scanned: usize,
}

impl Table4 {
    /// Plain-text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Table IV — vulnerable prebuilt core apps ({} scanned)\napp | code path | method\n",
            self.apps_scanned
        );
        for r in &self.rows {
            let _ = writeln!(out, "{} | {} | {}", r.app, r.code_path, r.method);
        }
        out
    }
}

/// Regenerates Table IV.
pub fn table4(scale: ExperimentScale) -> Table4 {
    let spec = AospSpec::android_6_0_1();
    let report = run_pipeline(scale);
    let mut rows = Vec::new();
    for row in report.confirmed_prebuilt_interfaces() {
        let ServiceKind::PrebuiltApp(pkg) = &row.kind else {
            continue;
        };
        let app = spec
            .prebuilt_apps
            .iter()
            .find(|a| &a.package == pkg)
            .expect("pipeline rows map to spec apps");
        rows.push(Table4Row {
            app: app.name.clone(),
            code_path: app.code_path.clone(),
            method: format!("{}.{}", row.interface, row.method),
        });
    }
    rows.sort_by(|a, b| (&a.app, &a.method).cmp(&(&b.app, &b.method)));
    Table4 {
        rows,
        apps_scanned: spec.prebuilt_apps.len(),
    }
}

/// One Table V row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table5Row {
    /// App name.
    pub app: String,
    /// Play-store download band.
    pub downloads: String,
    /// Vulnerable exported interface.
    pub interface: String,
    /// Verification status (third-party apps are static-only).
    pub status: String,
}

/// Table V: vulnerable third-party apps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table5 {
    /// The rows.
    pub rows: Vec<Table5Row>,
    /// Apps scanned (1000).
    pub apps_scanned: usize,
}

impl Table5 {
    /// Plain-text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Table V — vulnerable third-party apps ({} scanned)\napp | downloads | interface\n",
            self.apps_scanned
        );
        for r in &self.rows {
            let _ = writeln!(out, "{} | {} | {}", r.app, r.downloads, r.interface);
        }
        out
    }
}

/// Regenerates Table V.
pub fn table5(scale: ExperimentScale) -> Table5 {
    let spec = AospSpec::android_6_0_1();
    let report = run_pipeline(scale);
    let mut rows = Vec::new();
    for row in report.third_party_interfaces() {
        let ServiceKind::ThirdPartyApp(pkg) = &row.kind else {
            continue;
        };
        let app = spec
            .third_party_apps
            .iter()
            .find(|a| &a.package == pkg)
            .expect("pipeline rows map to spec apps");
        rows.push(Table5Row {
            app: app.name.clone(),
            downloads: app.downloads.clone(),
            interface: format!("{}.{}", row.interface, row.method),
            status: match row.status {
                VerificationStatus::StaticOnly => "static".to_owned(),
                VerificationStatus::Confirmed => "confirmed".to_owned(),
                VerificationStatus::Cleared => "cleared".to_owned(),
            },
        });
    }
    rows.sort_by(|a, b| a.app.cmp(&b.app));
    Table5 {
        rows,
        apps_scanned: spec.third_party_apps.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_matches_paper() {
        let h = analysis_headline(ExperimentScale::quick());
        assert_eq!(h.services_total, 104);
        assert_eq!(h.vulnerable_interfaces, 54);
        assert_eq!(h.vulnerable_services, 32);
        assert_eq!(h.zero_permission_services, 22);
        assert_eq!(h.prebuilt_interfaces, 3);
        assert_eq!(h.third_party_apps, 3);
        assert!(h.render().contains("54 in 32 system services"));
    }

    #[test]
    fn table1_has_44_rows_and_the_paper_split() {
        let t = table1(ExperimentScale::quick());
        assert_eq!(t.rows.len(), 44);
        assert_eq!(t.service_split, (19, 4, 3));
        assert!(t
            .render()
            .contains("19 zero-permission, 4 normal, 3 dangerous"));
    }

    #[test]
    fn table4_matches_paper_rows() {
        let t = table4(ExperimentScale::quick());
        assert_eq!(t.apps_scanned, 88);
        assert_eq!(t.rows.len(), 3);
        let apps: std::collections::BTreeSet<_> = t.rows.iter().map(|r| r.app.as_str()).collect();
        assert_eq!(apps, ["Bluetooth", "PicoTts"].into_iter().collect());
        assert!(t.rows.iter().any(|r| r.code_path == "external/svox/pico"));
    }

    #[test]
    fn table5_matches_paper_rows() {
        let t = table5(ExperimentScale::quick());
        assert_eq!(t.apps_scanned, 1_000);
        assert_eq!(t.rows.len(), 3);
        let apps: std::collections::BTreeSet<_> = t.rows.iter().map(|r| r.app.as_str()).collect();
        assert_eq!(
            apps,
            ["Google Text-to-speech", "SnapMovie", "Supernet VPN"]
                .into_iter()
                .collect()
        );
    }
}
