//! Shard-count invariance of fleet campaigns.
//!
//! The campaign engine deals devices round-robin to worker threads and
//! merges per-shard partial summaries by addition. The contract is that
//! the worker count is *unobservable*: a `FleetSummary` — down to its
//! serialized bytes, which is what the CI smoke job diffs — depends only
//! on `(campaign_seed, devices, scale, attack selection)`.

use jgre_core::fleet::FleetConfig;
use jgre_core::{run_campaign, ExperimentScale};
use proptest::prelude::*;

fn summary_json(devices: u64, threads: usize, campaign_seed: u64) -> String {
    let config = FleetConfig {
        devices,
        threads,
        campaign_seed,
        ..FleetConfig::new(ExperimentScale::quick())
    };
    serde_json::to_string_pretty(&run_campaign(&config)).expect("fleet summaries serialize")
}

/// The ISSUE's pinned thread set {1, 2, 7}: inline execution, an even
/// split, and a count that divides 57-device sweeps unevenly (shard 0
/// gets 9 devices, shards 3..7 get 8).
#[test]
fn catalog_sweep_is_byte_identical_for_threads_1_2_7() {
    let one = summary_json(60, 1, 2_017);
    assert_eq!(one, summary_json(60, 2, 2_017));
    assert_eq!(one, summary_json(60, 7, 2_017));
}

#[test]
fn repeated_runs_write_identical_bytes() {
    assert_eq!(summary_json(30, 4, 99), summary_json(30, 4, 99));
}

#[test]
fn more_threads_than_devices_changes_nothing() {
    assert_eq!(summary_json(3, 1, 7), summary_json(3, 16, 7));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary small fleets at arbitrary seeds: every thread count in
    /// {1, 2, 7} serializes the same bytes.
    #[test]
    fn summary_is_shard_count_invariant(
        devices in 1u64..24,
        campaign_seed in 0u64..u64::MAX,
    ) {
        let one = summary_json(devices, 1, campaign_seed);
        prop_assert_eq!(&one, &summary_json(devices, 2, campaign_seed));
        prop_assert_eq!(&one, &summary_json(devices, 7, campaign_seed));
    }
}
