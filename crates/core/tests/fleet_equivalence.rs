//! N=1 equivalence: the fleet engine adds nothing on top of a device.
//!
//! A 1-device campaign must behave exactly like booting a
//! [`DefendedDevice`] by hand at the derived seed and grinding the same
//! vector — same call count, same survival, same [`DetectionOutcome`]
//! sequence. This pins the fleet's per-device semantics (install name,
//! call options, stop conditions, budget) against an independent
//! re-implementation, for every vector in the catalog: any drift between
//! `fleet::run_device` and the single-device path shows up as a diff on
//! the exact interface that drifted.

use std::sync::Mutex;

use jgre_attack::AttackVector;
use jgre_core::fleet::{DeviceRun, FleetConfig};
use jgre_core::{fleet, DefendedDevice, ExperimentScale};
use jgre_corpus::spec::AospSpec;
use jgre_framework::FrameworkError;
use jgre_sim::stream_seed;

/// Hand-rolled single-device attack loop — deliberately independent of
/// `fleet::run_device`, mirroring its documented semantics.
fn direct_run(
    scale: ExperimentScale,
    vector: &AttackVector,
    budget: u64,
) -> (u64, bool, Vec<jgre_core::defense::DetectionOutcome>) {
    let mut device = DefendedDevice::boot(scale);
    let mal = device.system_mut().install_app(
        format!("com.malware.{}.{}", vector.service, vector.method),
        vector.permissions.iter().copied(),
    );
    let mut calls = 0u64;
    let mut survived = true;
    for _ in 0..budget {
        match device.call_service(mal, &vector.service, &vector.method, vector.call_options()) {
            Ok(outcome) => {
                calls += 1;
                if outcome.host_aborted {
                    survived = false;
                }
            }
            Err(FrameworkError::ServiceDead | FrameworkError::UnknownService(_)) => {
                survived = false;
            }
            Err(e) => panic!("direct run of {}: {e}", vector.label()),
        }
        if !survived || !device.detections().is_empty() {
            break;
        }
    }
    (calls, survived, device.detections().to_vec())
}

#[test]
fn one_device_fleet_equals_direct_device_for_every_vector() {
    let scale = ExperimentScale::quick();
    let campaign_seed = 2_017;
    let catalog = AttackVector::all_vectors(&AospSpec::android_6_0_1());
    assert_eq!(catalog.len(), 57);
    for (index, vector) in catalog.iter().enumerate() {
        let config = FleetConfig {
            devices: 1,
            campaign_seed,
            attack: Some(index),
            ..FleetConfig::new(scale)
        };
        let observed: Mutex<Option<DeviceRun>> = Mutex::new(None);
        let summary = fleet::run_campaign_observed(&config, |run| {
            *observed.lock().unwrap() = Some(run.clone());
        });
        let run = observed.into_inner().unwrap().expect("one device ran");
        assert_eq!(run.device, 0);
        assert_eq!(run.seed, stream_seed(campaign_seed, 0));
        assert_eq!(run.interface, vector.label());

        // Device 0 of a campaign == a hand-booted device at the derived
        // seed, driven with the documented budget.
        let device_scale = scale.with_seed(run.seed);
        let budget = scale.jgr_capacity as u64 * 4;
        let (calls, survived, detections) = direct_run(device_scale, vector, budget);
        assert_eq!(run.calls, calls, "{}: call count drifted", vector.label());
        assert_eq!(
            run.victim_survived,
            survived,
            "{}: survival drifted",
            vector.label()
        );
        assert_eq!(
            run.detections,
            detections,
            "{}: detection sequence drifted",
            vector.label()
        );

        // The summary is that run, folded once.
        assert_eq!(summary.devices, 1);
        assert_eq!(summary.calls, run.calls);
        assert_eq!(summary.detected, u64::from(!run.detections.is_empty()));
        assert_eq!(summary.per_attack.len(), 1);
        assert_eq!(summary.per_attack[0].interface, vector.label());
    }
}
