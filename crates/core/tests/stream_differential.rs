//! Differential guarantee of the streaming defender: for every attack
//! vector in the corpus, replaying the device's tapped telemetry through
//! the framed streaming path yields the same verdict as batch
//! `segment_tree_scores` — and the same as the independent `naive_scores`
//! implementation — at every OS thread count.
//!
//! The streaming side sees the events through the full wire pipeline
//! (encode → chunked bytes → incremental decoder → ring → scorer), so
//! this suite exercises the protocol and transport layers as well as the
//! correlation arithmetic.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::thread;

use jgre_core::defense::stream::{
    encode_event, stream_header, ServeConfig, ServeReport, StreamDefender, StreamEvent,
};
use jgre_core::defense::{naive_scores, segment_tree_scores, ScoreParams};
use jgre_core::sim::{SimTime, Uid};
use jgre_core::ExperimentScale;
use jgre_core::{attack::AttackVector, corpus::spec::AospSpec, tap::tap_attack_events};

/// Streaming config that scores exactly once, at the stream's last add:
/// an effectively unbounded ring (no overload drops) and no horizon (no
/// retraction), so the single pass sees precisely the batch input.
fn lossless_config(trigger_adds: u64) -> ServeConfig {
    ServeConfig {
        horizon: None,
        trigger_adds: trigger_adds.max(1),
        ring_capacity: 1 << 20,
        service_us: 1,
        ..ServeConfig::default()
    }
}

/// Replays `events` through the wire protocol into a `StreamDefender`.
/// `threads == 1` feeds chunks inline; `threads == 2` ships them from a
/// real producer thread over a bounded channel, like `jgre serve`.
fn stream_through(events: &[StreamEvent], threads: u32, config: ServeConfig) -> ServeReport {
    const CHUNK_FRAMES: usize = 7; // deliberately odd: chunk cuts land mid-frame
    let mut defender = StreamDefender::new(config);
    if threads >= 2 {
        let owned: Vec<StreamEvent> = events.to_vec();
        let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(2);
        let producer = thread::spawn(move || {
            let mut chunk = stream_header();
            let mut frames = 0usize;
            for event in &owned {
                encode_event(event, &mut chunk);
                frames += 1;
                if frames >= CHUNK_FRAMES {
                    if tx.send(std::mem::take(&mut chunk)).is_err() {
                        return;
                    }
                    frames = 0;
                }
            }
            let _ = tx.send(chunk);
        });
        for chunk in rx {
            defender.ingest_bytes(&chunk);
        }
        producer.join().expect("producer thread panicked");
    } else {
        let mut chunk = stream_header();
        let mut frames = 0usize;
        for event in events {
            encode_event(event, &mut chunk);
            frames += 1;
            if frames >= CHUNK_FRAMES {
                defender.ingest_bytes(&std::mem::take(&mut chunk));
                frames = 0;
            }
        }
        defender.ingest_bytes(&chunk);
    }
    defender.finish().expect("no store, finish cannot fail")
}

type IpcByUid = BTreeMap<Uid, BTreeMap<String, Vec<SimTime>>>;

/// Batch inputs over the stream prefix ending at the pass trigger (the
/// last add): exactly what the streaming scorer has seen when it scores.
fn batch_inputs(events: &[StreamEvent]) -> (IpcByUid, Vec<SimTime>) {
    let last_add = events
        .iter()
        .rposition(|e| matches!(e, StreamEvent::JgrAdd { .. }))
        .expect("caller checked the stream has adds");
    let mut ipc_by_uid = IpcByUid::new();
    let mut adds = Vec::new();
    for event in &events[..=last_add] {
        match event {
            StreamEvent::Ipc { at, uid, ipc_type } => ipc_by_uid
                .entry(*uid)
                .or_default()
                .entry(ipc_type.clone())
                .or_default()
                .push(*at),
            StreamEvent::JgrAdd { at } => adds.push(*at),
        }
    }
    (ipc_by_uid, adds)
}

#[test]
fn streaming_matches_batch_on_every_attack_vector() {
    let spec = AospSpec::android_6_0_1();
    let vectors = AttackVector::all_vectors(&spec);
    assert_eq!(vectors.len(), 57, "the corpus ships 57 vectors");
    let params = ScoreParams::default();
    let mut verdict_vectors = 0usize;
    for vector in &vectors {
        let label = format!("{}.{}", vector.service, vector.method);
        let tap = tap_attack_events(ExperimentScale::quick(), vector, 40);
        if tap.adds == 0 {
            // A vector the undefended quick device never leaks on still
            // must not invent a verdict.
            let report = stream_through(&tap.events, 1, lossless_config(1));
            assert!(report.verdicts.is_empty(), "{label}: verdict without adds");
            continue;
        }

        let config = lossless_config(tap.adds);
        let inline = stream_through(&tap.events, 1, config);
        let threaded = stream_through(&tap.events, 2, config);
        assert_eq!(inline, threaded, "{label}: thread count changed the report");
        assert_eq!(
            inline.ingest.accepted, inline.ingest.offered,
            "{label}: lossless config must not drop"
        );

        let (ipc_by_uid, adds) = batch_inputs(&tap.events);
        let batch = segment_tree_scores(&ipc_by_uid, &adds, params);
        let naive = naive_scores(&ipc_by_uid, &adds, params);
        assert_eq!(
            batch.scores, naive.scores,
            "{label}: tree and naive batch scorers disagree"
        );

        let top = batch.top().expect("attack traffic yields scores");
        match inline.verdicts.last() {
            Some(verdict) => {
                verdict_vectors += 1;
                assert!(top.score > 0, "{label}: verdict without batch evidence");
                assert_eq!(verdict.suspect, top.uid, "{label}: suspects diverge");
                assert_eq!(verdict.score, top.score, "{label}: scores diverge");
                assert_eq!(
                    verdict.suspect, tap.attacker,
                    "{label}: the attacker must be the suspect"
                );
            }
            None => assert_eq!(
                top.score, 0,
                "{label}: batch found evidence but streaming stayed silent"
            ),
        }
    }
    assert!(
        verdict_vectors > vectors.len() / 2,
        "most vectors must produce a streaming verdict (got {verdict_vectors})"
    );
}
