//! Arena-slot reuse: a reset device is a fresh device.
//!
//! The fleet engine re-boots one [`DefendedDevice`] slot per worker
//! between runs instead of building a new device each time. That reuse is
//! only sound if *nothing* leaks across [`DefendedDevice::reset`] — not
//! the virtual clock, not uid allocation, not defender monitor state, not
//! the previous attack's JGR tables. These tests run different attacks
//! back-to-back on one slot and require the second run to be
//! indistinguishable from one on a freshly-booted device.

use jgre_core::fleet::{campaign_catalog, run_device, DeviceArena, FleetConfig};
use jgre_core::{DefendedDevice, ExperimentScale};
use jgre_framework::CallOptions;

#[test]
fn second_attack_on_a_reused_slot_matches_a_fresh_arena() {
    let config = FleetConfig {
        devices: 2,
        ..FleetConfig::new(ExperimentScale::quick())
    };
    let catalog = campaign_catalog(&config);

    // Device 0 (accessibility vector) dirties the slot: detections fired,
    // apps installed, clock advanced, defender monitor warm.
    let mut reused = DeviceArena::new();
    let first = run_device(&mut reused, &config, &catalog, 0);
    assert!(
        !first.detections.is_empty(),
        "first run should trip the defense"
    );

    // Device 1 (a different vector) on the dirty slot vs a fresh arena.
    let on_reused = run_device(&mut reused, &config, &catalog, 1);
    let mut fresh = DeviceArena::new();
    let on_fresh = run_device(&mut fresh, &config, &catalog, 1);
    assert_eq!(on_reused, on_fresh, "state leaked across DeviceArena reuse");
    assert_ne!(
        first.interface, on_reused.interface,
        "test needs two distinct attacks"
    );
}

#[test]
fn run_order_on_a_slot_does_not_matter() {
    let config = FleetConfig {
        devices: 4,
        ..FleetConfig::new(ExperimentScale::quick())
    };
    let catalog = campaign_catalog(&config);
    let mut forward = DeviceArena::new();
    let f0 = run_device(&mut forward, &config, &catalog, 0);
    let f3 = run_device(&mut forward, &config, &catalog, 3);
    let mut backward = DeviceArena::new();
    let b3 = run_device(&mut backward, &config, &catalog, 3);
    let b0 = run_device(&mut backward, &config, &catalog, 0);
    assert_eq!(f0, b0);
    assert_eq!(f3, b3);
}

#[test]
fn reset_restores_every_fresh_boot_observable() {
    let scale = ExperimentScale::quick();

    // Dirty a device thoroughly: extra app, attack driven to detection.
    let mut used = DefendedDevice::boot(scale);
    let bystander = used.system_mut().install_app("com.bystander", []);
    used.call_service(bystander, "clipboard", "getState", CallOptions::default())
        .expect("benign call");
    let mal = used.system_mut().install_app("com.evil", []);
    while used.detections().is_empty() {
        used.call_service(mal, "audio", "startWatchingRoutes", CallOptions::default())
            .expect("audio registered");
    }
    assert!(used.system().now() > DefendedDevice::boot(scale).system().now());

    used.reset(scale);
    let mut fresh = DefendedDevice::boot(scale);

    // Clock, reboot counter, and detections back to boot state.
    assert_eq!(used.system().now(), fresh.system().now());
    assert_eq!(used.system().soft_reboots(), 0);
    assert!(used.detections().is_empty());

    // Uid allocation restarts: the first app installed after reset gets
    // the same uid as the first app on a fresh device.
    let u = used.system_mut().install_app("com.first", []);
    let f = fresh.system_mut().install_app("com.first", []);
    assert_eq!(u, f, "uid allocator leaked across reset");

    // And the same attack plays out identically on both.
    let drive = |device: &mut DefendedDevice, uid| {
        let mut calls = 0u64;
        while device.detections().is_empty() {
            device
                .call_service(uid, "audio", "startWatchingRoutes", CallOptions::default())
                .expect("audio registered");
            calls += 1;
            assert!(calls < 50_000, "defense never fired");
        }
        (calls, device.detections().to_vec())
    };
    let (used_calls, used_detections) = drive(&mut used, u);
    let (fresh_calls, fresh_detections) = drive(&mut fresh, f);
    assert_eq!(used_calls, fresh_calls);
    assert_eq!(used_detections, fresh_detections);
}
