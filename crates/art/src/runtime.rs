//! The per-process runtime: heap + reference tables + GC + abort semantics.

use std::collections::BTreeMap;

use jgre_sim::{Pid, SimClock, SimTime, Tid, TraceSink};
use serde::{Deserialize, Serialize};

use crate::{
    ArtError, Finalizer, Heap, IndirectRef, IndirectRefTable, IrtCookie, JgrEvent, JgrEventKind,
    JgrObserver, ObjRef, ObserverRegistry, RefKind, MAX_GLOBAL_REFS, MAX_LOCAL_REFS,
    MAX_WEAK_GLOBAL_REFS,
};

/// Lifecycle state of a runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuntimeState {
    /// Normal operation.
    Running,
    /// The global reference table overflowed; the hosting process is dead.
    /// For `system_server` this means an Android soft reboot.
    Aborted,
}

/// Identifier of an attached JNI environment (one per simulated thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EnvId(Tid);

impl EnvId {
    /// The thread this environment belongs to.
    pub fn tid(self) -> Tid {
        self.0
    }
}

/// Result of one garbage collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GcStats {
    /// Objects reclaimed.
    pub freed_objects: usize,
    /// Finalizers executed.
    pub finalizers_run: usize,
    /// Global references released by finalizers during this collection.
    pub globals_released: usize,
    /// Sweep rounds until fixpoint.
    pub rounds: usize,
}

/// Aggregate counters exposed for experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Lifetime global-reference adds.
    pub global_adds: u64,
    /// Lifetime global-reference removes.
    pub global_removes: u64,
    /// Highest global table size observed.
    pub global_high_watermark: usize,
    /// Garbage collections run.
    pub gc_count: u64,
    /// Objects ever allocated.
    pub objects_allocated: u64,
}

/// A simulated ART runtime instance for one process.
///
/// See the [crate docs](crate) for the overall model. The key behavioural
/// contract, straight from the paper: *"when the number of JGR in one
/// process's runtime exceeds a system upper bound threshold (i.e., 51200),
/// this victim process aborts"*. After an abort every operation returns
/// [`ArtError::RuntimeAborted`].
#[derive(Debug)]
pub struct Runtime {
    pid: Pid,
    clock: SimClock,
    trace: TraceSink,
    heap: Heap,
    globals: IndirectRefTable,
    weak_globals: IndirectRefTable,
    envs: BTreeMap<Tid, IndirectRefTable>,
    observers: ObserverRegistry,
    state: RuntimeState,
    aborted_at: Option<SimTime>,
    gc_count: u64,
    check_jni: bool,
}

impl Runtime {
    /// Creates a running runtime for process `pid` with the Android 6.0.1
    /// table capacities.
    pub fn new(pid: Pid, clock: SimClock, trace: TraceSink) -> Self {
        Self::with_global_capacity(pid, clock, trace, MAX_GLOBAL_REFS)
    }

    /// Creates a runtime with a custom global-table capacity. Experiments
    /// use small capacities to exercise the abort path quickly; the ablation
    /// benches sweep it.
    ///
    /// # Panics
    ///
    /// Panics if `global_capacity` is zero.
    pub fn with_global_capacity(
        pid: Pid,
        clock: SimClock,
        trace: TraceSink,
        global_capacity: usize,
    ) -> Self {
        Self {
            pid,
            clock,
            trace,
            heap: Heap::new(),
            globals: IndirectRefTable::new(RefKind::Global, global_capacity),
            weak_globals: IndirectRefTable::new(RefKind::WeakGlobal, MAX_WEAK_GLOBAL_REFS),
            envs: BTreeMap::new(),
            observers: ObserverRegistry::new(),
            state: RuntimeState::Running,
            aborted_at: None,
            gc_count: 0,
            check_jni: false,
        }
    }

    /// The owning process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Current lifecycle state.
    pub fn state(&self) -> RuntimeState {
        self.state
    }

    /// When the runtime aborted, if it did.
    pub fn aborted_at(&self) -> Option<SimTime> {
        self.aborted_at
    }

    /// Enables CheckJNI: using an invalid (stale or deleted) indirect
    /// reference aborts the runtime instead of merely failing the call —
    /// "JNI DETECTED ERROR IN APPLICATION" — as `adb shell setprop
    /// debug.checkjni 1` does on a real device.
    pub fn set_check_jni(&mut self, enabled: bool) {
        self.check_jni = enabled;
    }

    /// Whether CheckJNI is active.
    pub fn check_jni(&self) -> bool {
        self.check_jni
    }

    /// Registers a [`JgrObserver`] that will see every global add/remove.
    pub fn register_observer(&mut self, observer: std::rc::Rc<dyn JgrObserver>) {
        self.observers.register(observer);
    }

    /// Drops every registered observer (the observing process died).
    pub fn clear_observers(&mut self) {
        self.observers.clear();
    }

    /// Live size of the global reference table — the quantity plotted on
    /// the Y axis of the paper's Figures 3 and 4.
    pub fn global_count(&self) -> usize {
        self.globals.len()
    }

    /// Capacity of the global table (51200 unless overridden).
    pub fn global_capacity(&self) -> usize {
        self.globals.capacity()
    }

    /// Live size of the weak-global table.
    pub fn weak_global_count(&self) -> usize {
        self.weak_globals.len()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            global_adds: self.globals.total_adds(),
            global_removes: self.globals.total_removes(),
            global_high_watermark: self.globals.high_watermark(),
            gc_count: self.gc_count,
            objects_allocated: self.heap.total_allocated(),
        }
    }

    /// Live heap object count.
    pub fn heap_live(&self) -> usize {
        self.heap.live_count()
    }

    fn ensure_running(&self) -> Result<(), ArtError> {
        match self.state {
            RuntimeState::Running => Ok(()),
            RuntimeState::Aborted => Err(ArtError::RuntimeAborted),
        }
    }

    /// Allocates a new heap object.
    ///
    /// The allocation itself cannot fail; a dead runtime simply no longer
    /// allocates, which we model by panicking in debug via `ensure_running`
    /// being checked on the reference operations instead — allocation on an
    /// aborted runtime returns a handle that no table will accept.
    pub fn alloc(&mut self, class: impl Into<String>) -> ObjRef {
        self.heap.alloc(class)
    }

    /// Class of a live object.
    ///
    /// # Errors
    ///
    /// [`ArtError::StaleObjRef`] if the object was collected.
    pub fn class_of(&self, obj: ObjRef) -> Result<&str, ArtError> {
        self.heap.class_of(obj)
    }

    /// Whether `obj` is still live.
    pub fn is_live(&self, obj: ObjRef) -> bool {
        self.heap.is_live(obj)
    }

    /// Pins an object independent of any reference table (models a service
    /// storing the object in a member collection — the retention that makes
    /// an interface vulnerable).
    ///
    /// # Errors
    ///
    /// [`ArtError::StaleObjRef`] if the object was collected.
    pub fn retain(&mut self, obj: ObjRef) -> Result<(), ArtError> {
        self.heap.pin(obj)
    }

    /// Releases a [`retain`](Self::retain) pin. The object becomes
    /// collectable once all pins are gone.
    ///
    /// # Errors
    ///
    /// [`ArtError::StaleObjRef`] if the object was collected.
    pub fn release(&mut self, obj: ObjRef) -> Result<(), ArtError> {
        self.heap.unpin(obj)
    }

    /// Attaches a finalizer to `obj`.
    ///
    /// # Errors
    ///
    /// [`ArtError::StaleObjRef`] if the object was collected.
    pub fn add_finalizer(&mut self, obj: ObjRef, finalizer: Finalizer) -> Result<(), ArtError> {
        self.heap.add_finalizer(obj, finalizer)
    }

    /// Creates a JNI global reference to `obj`, pinning it.
    ///
    /// This is the `IndirectReferenceTable::Add(cookie, obj)` entry point
    /// that the paper's JGR Entry Extractor hunts for (§III-B).
    ///
    /// # Errors
    ///
    /// * [`ArtError::TableOverflow`] when the 51200 cap is hit — the
    ///   runtime **aborts** as a side effect, exactly the JGRE condition.
    /// * [`ArtError::RuntimeAborted`] if the runtime already aborted.
    /// * [`ArtError::StaleObjRef`] if `obj` was collected.
    pub fn add_global(&mut self, obj: ObjRef) -> Result<IndirectRef, ArtError> {
        self.ensure_running()?;
        self.heap.pin(obj)?;
        match self.globals.add(obj) {
            Ok(iref) => {
                self.emit(JgrEventKind::Add);
                Ok(iref)
            }
            Err(err) => {
                self.heap.unpin(obj).expect("pinned just above");
                self.abort();
                Err(err)
            }
        }
    }

    /// Deletes a global reference and unpins its object.
    ///
    /// # Errors
    ///
    /// [`ArtError::InvalidIndirectRef`] for unknown/stale references,
    /// [`ArtError::RuntimeAborted`] after an abort.
    pub fn delete_global(&mut self, iref: IndirectRef) -> Result<(), ArtError> {
        self.ensure_running()?;
        let obj = match self.globals.remove(iref) {
            Ok(obj) => obj,
            Err(err) => return Err(self.check_jni_trap(err)),
        };
        // The object may legitimately already be gone if it was collected
        // while pinned only by this reference — that cannot happen under the
        // current model, so surface bookkeeping bugs loudly.
        self.heap.unpin(obj).expect("global ref pinned its object");
        self.emit(JgrEventKind::Remove);
        Ok(())
    }

    /// Resolves a global reference.
    ///
    /// # Errors
    ///
    /// [`ArtError::InvalidIndirectRef`] for unknown/stale references.
    pub fn get_global(&mut self, iref: IndirectRef) -> Result<ObjRef, ArtError> {
        match self.globals.get(iref) {
            Ok(obj) => Ok(obj),
            Err(err) => Err(self.check_jni_trap(err)),
        }
    }

    /// Creates a weak global reference (does not pin).
    ///
    /// # Errors
    ///
    /// [`ArtError::TableOverflow`] at the weak cap (does **not** abort the
    /// runtime; ART treats weak overflow the same way, and no attack in the
    /// paper goes through weak refs), [`ArtError::RuntimeAborted`] after an
    /// abort.
    pub fn add_weak_global(&mut self, obj: ObjRef) -> Result<IndirectRef, ArtError> {
        self.ensure_running()?;
        self.heap.class_of(obj)?; // validate liveness
        self.weak_globals.add(obj)
    }

    /// Deletes a weak global reference.
    ///
    /// # Errors
    ///
    /// [`ArtError::InvalidIndirectRef`] for unknown/stale references.
    pub fn delete_weak_global(&mut self, iref: IndirectRef) -> Result<(), ArtError> {
        self.ensure_running()?;
        self.weak_globals.remove(iref)?;
        Ok(())
    }

    /// Resolves a weak global reference; `Ok(None)` when the referent has
    /// been collected (the reference was cleared).
    ///
    /// # Errors
    ///
    /// [`ArtError::InvalidIndirectRef`] for unknown/stale references.
    pub fn get_weak_global(&self, iref: IndirectRef) -> Result<Option<ObjRef>, ArtError> {
        let obj = self.weak_globals.get(iref)?;
        Ok(self.heap.is_live(obj).then_some(obj))
    }

    /// Attaches a JNI environment for thread `tid` (idempotent).
    pub fn attach_thread(&mut self, tid: Tid) -> EnvId {
        self.envs
            .entry(tid)
            .or_insert_with(|| IndirectRefTable::new(RefKind::Local, MAX_LOCAL_REFS));
        EnvId(tid)
    }

    /// Opens a local-reference frame on `env` (a native method entry).
    ///
    /// # Errors
    ///
    /// [`ArtError::UnknownEnv`] if the thread was never attached.
    pub fn push_local_frame(&mut self, env: EnvId) -> Result<IrtCookie, ArtError> {
        Ok(self
            .envs
            .get_mut(&env.0)
            .ok_or(ArtError::UnknownEnv)?
            .push_frame())
    }

    /// Creates a local reference in the current frame of `env`, pinning the
    /// object until the frame pops.
    ///
    /// # Errors
    ///
    /// [`ArtError::UnknownEnv`], [`ArtError::TableOverflow`] (local caps at
    /// 512), or [`ArtError::StaleObjRef`].
    pub fn add_local(&mut self, env: EnvId, obj: ObjRef) -> Result<IndirectRef, ArtError> {
        self.ensure_running()?;
        let table = self.envs.get_mut(&env.0).ok_or(ArtError::UnknownEnv)?;
        self.heap.pin(obj)?;
        match table.add(obj) {
            Ok(iref) => Ok(iref),
            Err(err) => {
                self.heap.unpin(obj).expect("pinned just above");
                Err(err)
            }
        }
    }

    /// Closes a local frame, releasing every local reference created since
    /// — the automatic cleanup that makes *local* references safe where
    /// globals are not (paper §II-A).
    ///
    /// # Errors
    ///
    /// [`ArtError::UnknownEnv`] or [`ArtError::FrameMismatch`].
    pub fn pop_local_frame(&mut self, env: EnvId, cookie: IrtCookie) -> Result<(), ArtError> {
        let table = self.envs.get_mut(&env.0).ok_or(ArtError::UnknownEnv)?;
        let released = table.pop_frame(cookie)?;
        for obj in released {
            self.heap.unpin(obj).expect("local ref pinned its object");
        }
        Ok(())
    }

    /// Number of live local references on `env`.
    ///
    /// # Errors
    ///
    /// [`ArtError::UnknownEnv`] if the thread was never attached.
    pub fn local_count(&self, env: EnvId) -> Result<usize, ArtError> {
        Ok(self.envs.get(&env.0).ok_or(ArtError::UnknownEnv)?.len())
    }

    /// Runs garbage collection to a fixpoint: frees unpinned objects, runs
    /// their finalizers (which may delete global references and unpin more
    /// objects), repeats.
    ///
    /// The paper's dynamic verification (§III-D) drives this periodically
    /// via DDMS while firing 60 000 IPC requests; a vulnerable interface is
    /// one whose JGR count stays high even across collections.
    pub fn collect_garbage(&mut self) -> GcStats {
        let mut stats = GcStats::default();
        self.gc_count += 1;
        loop {
            let freed = self.heap.sweep_unpinned();
            if freed.is_empty() {
                break;
            }
            stats.rounds += 1;
            stats.freed_objects += freed.len();
            for (_obj, finalizers) in freed {
                for finalizer in finalizers {
                    stats.finalizers_run += 1;
                    self.run_finalizer(finalizer, &mut stats);
                }
            }
        }
        self.trace.record(
            self.clock.now(),
            Some(self.pid),
            None,
            "art.gc",
            format!(
                "freed={} finalizers={} globals_released={}",
                stats.freed_objects, stats.finalizers_run, stats.globals_released
            ),
        );
        stats
    }

    fn run_finalizer(&mut self, finalizer: Finalizer, stats: &mut GcStats) {
        match finalizer {
            Finalizer::DeleteGlobalRef(iref) => {
                // The reference may already have been deleted explicitly;
                // finalizers are best-effort, like BinderProxy.destroy().
                if let Ok(obj) = self.globals.remove(iref) {
                    self.heap.unpin(obj).expect("global ref pinned its object");
                    stats.globals_released += 1;
                    self.emit(JgrEventKind::Remove);
                }
            }
            Finalizer::DeleteWeakGlobalRef(iref) => {
                let _ = self.weak_globals.remove(iref);
            }
            Finalizer::Unpin(obj) => {
                // Target may itself already be collected.
                let _ = self.heap.unpin(obj);
            }
        }
    }

    /// Summarises the global table by referent class, most frequent first
    /// — the "global reference table dump" ART prints when the table
    /// overflows, and what the paper's bug reports to Google contained.
    pub fn reference_table_dump(&self, top: usize) -> Vec<(String, usize)> {
        let mut by_class: std::collections::BTreeMap<&str, usize> = Default::default();
        for obj in self.globals.iter() {
            if let Ok(class) = self.heap.class_of(obj) {
                *by_class.entry(class).or_insert(0) += 1;
            }
        }
        let mut rows: Vec<(String, usize)> = by_class
            .into_iter()
            .map(|(class, count)| (class.to_owned(), count))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(top);
        rows
    }

    /// Under CheckJNI an invalid-reference error becomes a runtime abort.
    fn check_jni_trap(&mut self, err: ArtError) -> ArtError {
        if self.check_jni && matches!(err, ArtError::InvalidIndirectRef { .. }) {
            self.trace.record(
                self.clock.now(),
                Some(self.pid),
                None,
                "art.checkjni",
                format!("JNI DETECTED ERROR IN APPLICATION: {err}"),
            );
            self.abort();
        }
        err
    }

    fn abort(&mut self) {
        self.state = RuntimeState::Aborted;
        self.aborted_at = Some(self.clock.now());
        let dump: Vec<String> = self
            .reference_table_dump(5)
            .into_iter()
            .map(|(class, count)| format!("{count} of {class}"))
            .collect();
        self.trace.record(
            self.clock.now(),
            Some(self.pid),
            None,
            "art.abort",
            format!(
                "JNI ERROR (app bug): global reference table overflow (max={}); summary: {}",
                self.globals.capacity(),
                dump.join(", ")
            ),
        );
    }

    fn emit(&self, kind: JgrEventKind) {
        let event = JgrEvent {
            at: self.clock.now(),
            pid: self.pid,
            kind,
            table_size_after: self.globals.len(),
        };
        self.observers.emit(event);
        self.trace.record(
            event.at,
            Some(self.pid),
            None,
            match kind {
                JgrEventKind::Add => "jgr.add",
                JgrEventKind::Remove => "jgr.remove",
            },
            format!("size={}", event.table_size_after),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn runtime_with_cap(cap: usize) -> Runtime {
        Runtime::with_global_capacity(Pid::new(1000), SimClock::new(), TraceSink::disabled(), cap)
    }

    #[test]
    fn default_capacity_is_the_paper_constant() {
        let rt = Runtime::new(Pid::new(1), SimClock::new(), TraceSink::disabled());
        assert_eq!(rt.global_capacity(), 51_200);
    }

    #[test]
    fn overflow_aborts_runtime() {
        let mut rt = runtime_with_cap(3);
        for _ in 0..3 {
            let obj = rt.alloc("android.os.Binder");
            rt.add_global(obj).unwrap();
        }
        let extra = rt.alloc("android.os.Binder");
        let err = rt.add_global(extra).unwrap_err();
        assert!(matches!(err, ArtError::TableOverflow { .. }));
        assert_eq!(rt.state(), RuntimeState::Aborted);
        assert!(rt.aborted_at().is_some());
        // Everything afterwards fails fast.
        let obj2 = rt.alloc("x");
        assert_eq!(rt.add_global(obj2), Err(ArtError::RuntimeAborted));
        assert!(rt.collect_garbage().freed_objects > 0);
    }

    #[test]
    fn delete_global_unpins_and_gc_collects() {
        let mut rt = runtime_with_cap(16);
        let obj = rt.alloc("android.os.BinderProxy");
        let iref = rt.add_global(obj).unwrap();
        rt.collect_garbage();
        assert!(rt.is_live(obj), "global ref pins the object");
        rt.delete_global(iref).unwrap();
        assert_eq!(rt.global_count(), 0);
        rt.collect_garbage();
        assert!(!rt.is_live(obj));
    }

    #[test]
    fn finalizer_releases_global_ref() {
        // Model: proxy object (pinned by the service) holds a JGR via its
        // finalizer; when the service releases it and GC runs, the JGR goes
        // away — the "innocent" pattern of sift rules 2-4.
        let mut rt = runtime_with_cap(16);
        let native_peer = rt.alloc("native.Peer");
        let gref = rt.add_global(native_peer).unwrap();
        let proxy = rt.alloc("android.os.BinderProxy");
        rt.add_finalizer(proxy, Finalizer::DeleteGlobalRef(gref))
            .unwrap();
        rt.retain(proxy).unwrap();
        let stats = rt.collect_garbage();
        assert_eq!(stats.globals_released, 0);
        assert_eq!(rt.global_count(), 1);
        rt.release(proxy).unwrap();
        let stats = rt.collect_garbage();
        assert_eq!(stats.globals_released, 1);
        assert_eq!(rt.global_count(), 0);
        assert!(!rt.is_live(native_peer));
        assert!(stats.rounds >= 2, "cascade needs a second sweep round");
    }

    #[test]
    fn local_frames_auto_release() {
        let mut rt = runtime_with_cap(16);
        let env = rt.attach_thread(Tid::new(7));
        let cookie = rt.push_local_frame(env).unwrap();
        let obj = rt.alloc("java.lang.String");
        rt.add_local(env, obj).unwrap();
        assert_eq!(rt.local_count(env).unwrap(), 1);
        rt.collect_garbage();
        assert!(rt.is_live(obj), "local ref pins while frame is open");
        rt.pop_local_frame(env, cookie).unwrap();
        assert_eq!(rt.local_count(env).unwrap(), 0);
        rt.collect_garbage();
        assert!(!rt.is_live(obj), "object dies when the native call returns");
    }

    #[test]
    fn weak_globals_do_not_pin() {
        let mut rt = runtime_with_cap(16);
        let obj = rt.alloc("x");
        let weak = rt.add_weak_global(obj).unwrap();
        rt.collect_garbage();
        assert_eq!(rt.get_weak_global(weak).unwrap(), None, "cleared by GC");
        rt.delete_weak_global(weak).unwrap();
    }

    #[test]
    fn observers_see_adds_and_removes() {
        struct Rec(RefCell<Vec<(JgrEventKind, usize)>>);
        impl JgrObserver for Rec {
            fn on_jgr_event(&self, e: JgrEvent) {
                self.0.borrow_mut().push((e.kind, e.table_size_after));
            }
        }
        let rec = Rc::new(Rec(RefCell::new(Vec::new())));
        let mut rt = runtime_with_cap(16);
        rt.register_observer(rec.clone());
        let a = rt.alloc("a");
        let b = rt.alloc("b");
        let ra = rt.add_global(a).unwrap();
        let _rb = rt.add_global(b).unwrap();
        rt.delete_global(ra).unwrap();
        assert_eq!(
            rec.0.borrow().as_slice(),
            &[
                (JgrEventKind::Add, 1),
                (JgrEventKind::Add, 2),
                (JgrEventKind::Remove, 1)
            ]
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut rt = runtime_with_cap(16);
        for _ in 0..5 {
            let o = rt.alloc("x");
            let r = rt.add_global(o).unwrap();
            rt.delete_global(r).unwrap();
        }
        let stats = rt.stats();
        assert_eq!(stats.global_adds, 5);
        assert_eq!(stats.global_removes, 5);
        assert_eq!(stats.global_high_watermark, 1);
        assert_eq!(stats.objects_allocated, 5);
    }

    #[test]
    fn weak_global_overflow_errors_without_aborting() {
        // Weak tables share the 51200-style cap but blowing them is not a
        // process abort — no attack in the paper goes through weak refs.
        let mut rt =
            Runtime::with_global_capacity(Pid::new(1), SimClock::new(), TraceSink::disabled(), 8);
        let obj = rt.alloc("pinned");
        rt.retain(obj).unwrap();
        let mut refs = Vec::new();
        // Exhaust the weak table (default cap is large; use the API shape
        // by filling a few and asserting behaviour stays Running).
        for _ in 0..1_000 {
            refs.push(rt.add_weak_global(obj).unwrap());
        }
        assert_eq!(rt.weak_global_count(), 1_000);
        assert_eq!(rt.state(), RuntimeState::Running);
        for r in refs {
            rt.delete_weak_global(r).unwrap();
        }
        assert_eq!(rt.weak_global_count(), 0);
    }

    #[test]
    fn check_jni_aborts_on_stale_reference_use() {
        let mut rt = runtime_with_cap(16);
        rt.set_check_jni(true);
        assert!(rt.check_jni());
        let obj = rt.alloc("x");
        let iref = rt.add_global(obj).unwrap();
        rt.delete_global(iref).unwrap();
        // Double-delete: without CheckJNI this is a plain error; with it,
        // the runtime dies like a real process under debug.checkjni.
        let err = rt.delete_global(iref).unwrap_err();
        assert!(matches!(err, ArtError::InvalidIndirectRef { .. }));
        assert_eq!(rt.state(), RuntimeState::Aborted);
    }

    #[test]
    fn without_check_jni_stale_use_is_recoverable() {
        let mut rt = runtime_with_cap(16);
        let obj = rt.alloc("x");
        let iref = rt.add_global(obj).unwrap();
        rt.delete_global(iref).unwrap();
        assert!(rt.delete_global(iref).is_err());
        assert_eq!(rt.state(), RuntimeState::Running, "plain error, no abort");
        assert!(rt.get_global(iref).is_err());
        assert_eq!(rt.state(), RuntimeState::Running);
    }

    #[test]
    fn reference_table_dump_ranks_classes() {
        let mut rt = runtime_with_cap(64);
        for _ in 0..5 {
            let o = rt.alloc("android.os.BinderProxy");
            rt.add_global(o).unwrap();
        }
        for _ in 0..2 {
            let o = rt.alloc("java.lang.String");
            rt.add_global(o).unwrap();
        }
        let dump = rt.reference_table_dump(10);
        assert_eq!(
            dump,
            vec![
                ("android.os.BinderProxy".to_owned(), 5),
                ("java.lang.String".to_owned(), 2)
            ]
        );
        assert_eq!(rt.reference_table_dump(1).len(), 1, "top is honoured");
    }

    #[test]
    fn exhaustion_run_matches_capacity_exactly() {
        // Fill to exactly the cap: the cap-th add succeeds, cap+1 aborts.
        let cap = 1000;
        let mut rt = runtime_with_cap(cap);
        for i in 0..cap {
            let o = rt.alloc("listener");
            rt.add_global(o)
                .unwrap_or_else(|e| panic!("add {i} failed: {e}"));
        }
        assert_eq!(rt.global_count(), cap);
        assert_eq!(rt.state(), RuntimeState::Running);
        let o = rt.alloc("listener");
        assert!(rt.add_global(o).is_err());
        assert_eq!(rt.state(), RuntimeState::Aborted);
    }
}
