//! Error type for runtime operations.

use std::error::Error;
use std::fmt;

use crate::RefKind;

/// Errors returned by the simulated ART runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArtError {
    /// A reference table reached its capacity. For the global table this is
    /// the JGRE condition: the runtime transitions to
    /// [`RuntimeState::Aborted`](crate::RuntimeState::Aborted).
    TableOverflow {
        /// Which table overflowed.
        kind: RefKind,
        /// The capacity that was exceeded.
        capacity: usize,
    },
    /// An indirect reference did not resolve: wrong kind, out of range,
    /// stale serial (slot was recycled), or already deleted.
    InvalidIndirectRef {
        /// Which table was addressed.
        kind: RefKind,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An object handle referred to a freed (collected) heap slot.
    StaleObjRef,
    /// The runtime has aborted (JGR table overflowed earlier); no further
    /// operations are possible, mirroring a dead Android process.
    RuntimeAborted,
    /// A JNI environment id did not name a live attached thread.
    UnknownEnv,
    /// A local-frame cookie was popped out of order.
    FrameMismatch,
}

impl fmt::Display for ArtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtError::TableOverflow { kind, capacity } => {
                write!(f, "{kind} reference table overflow (max={capacity})")
            }
            ArtError::InvalidIndirectRef { kind, reason } => {
                write!(f, "invalid {kind} indirect reference: {reason}")
            }
            ArtError::StaleObjRef => write!(f, "object handle refers to a collected object"),
            ArtError::RuntimeAborted => write!(f, "runtime has aborted"),
            ArtError::UnknownEnv => write!(f, "unknown JNI environment"),
            ArtError::FrameMismatch => write!(f, "local reference frame popped out of order"),
        }
    }
}

impl Error for ArtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ArtError::TableOverflow {
            kind: RefKind::Global,
            capacity: 51_200,
        };
        assert_eq!(e.to_string(), "global reference table overflow (max=51200)");
        assert!(ArtError::StaleObjRef.to_string().contains("collected"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + Error>() {}
        assert_traits::<ArtError>();
    }
}
