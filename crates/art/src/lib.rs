//! A simulated ART runtime faithful to the mechanisms the JGRE paper
//! (Gu et al., DSN 2017) attacks and defends.
//!
//! The real exhaustion target is `art/runtime/indirect_reference_table.cc`
//! plus the hard-coded global-reference cap in `art/runtime/java_vm_ext.cc`
//! (51200 on Android 6.0.1). This crate ports those semantics:
//!
//! * [`Heap`] — a simulated Java heap whose objects carry *finalizers*; a
//!   finalizer is how a garbage-collected `BinderProxy` ends up deleting the
//!   JNI global reference that was pinning its native peer.
//! * [`IndirectRefTable`] — serial-numbered slots, hole recycling, and
//!   segment (cookie) push/pop exactly as ART's local reference frames do.
//! * [`Runtime`] — one per simulated process: a heap, a global-reference
//!   table capped at [`MAX_GLOBAL_REFS`], a weak-global table, per-thread
//!   JNI environments, a garbage collector, and the *abort* behaviour that
//!   makes JGRE a denial-of-service: exceeding the cap kills the runtime
//!   (and, for `system_server`, soft-reboots the device).
//! * [`JgrObserver`] — the hook the JGRE Defender (crate `jgre-defense`)
//!   uses to watch global-reference creation and deletion per process.
//!
//! # Example
//!
//! ```
//! use jgre_art::{Runtime, RuntimeState, MAX_GLOBAL_REFS};
//! use jgre_sim::{Pid, SimClock, TraceSink};
//!
//! let mut rt = Runtime::new(Pid::new(412), SimClock::new(), TraceSink::disabled());
//! let obj = rt.alloc("android.os.BinderProxy");
//! let gref = rt.add_global(obj)?;
//! assert_eq!(rt.global_count(), 1);
//! rt.delete_global(gref)?;
//! assert_eq!(rt.global_count(), 0);
//! assert_eq!(rt.state(), RuntimeState::Running);
//! assert_eq!(MAX_GLOBAL_REFS, 51_200);
//! # Ok::<(), jgre_art::ArtError>(())
//! ```

mod error;
mod heap;
mod irt;
mod observer;
mod runtime;

pub use error::ArtError;
pub use heap::{Finalizer, Heap, ObjRef};
pub use irt::{IndirectRef, IndirectRefTable, IrtCookie, RefKind};
pub use observer::{JgrEvent, JgrEventKind, JgrObserver, ObserverRegistry};
pub use runtime::{EnvId, GcStats, Runtime, RuntimeState, RuntimeStats};

/// Hard cap on JNI global references per runtime, hard-coded in AOSP 6.0.1's
/// `art/runtime/java_vm_ext.cc` (`kGlobalsMax`). Exceeding it aborts the
/// runtime — the mechanism every attack in the paper exploits.
pub const MAX_GLOBAL_REFS: usize = 51_200;

/// Cap on weak global references (`kWeakGlobalsMax` in AOSP 6.0.1).
pub const MAX_WEAK_GLOBAL_REFS: usize = 51_200;

/// Cap on local references per JNI environment (`kLocalsMax`).
pub const MAX_LOCAL_REFS: usize = 512;
