//! Indirect reference tables, ported from ART's
//! `indirect_reference_table.{h,cc}` (AOSP 6.0.1).
//!
//! ART never hands raw object pointers across the JNI boundary; it hands
//! *indirect references* — `(kind, index, serial)` triples resolved through
//! a per-kind table. The table supports:
//!
//! * **serial numbers** per slot, so a stale reference to a recycled slot is
//!   detected instead of aliasing a new object;
//! * **hole recycling**: deleting a non-top entry leaves a hole that the
//!   next add reuses;
//! * **segments** (for local tables): `push_frame` snapshots the segment
//!   state into an [`IrtCookie`], and `pop_frame` bulk-releases everything
//!   added since — exactly how local references die when a native method
//!   returns;
//! * a **hard capacity** — for the global table this is the paper's 51200.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ArtError, ObjRef};

/// The three JNI reference kinds (`IndirectRefKind` in ART).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RefKind {
    /// Valid only for the duration of a native call; freed when the frame
    /// pops.
    Local,
    /// Valid until explicitly deleted — the leak-prone kind the paper's
    /// attacks exhaust.
    Global,
    /// Like global but does not keep the referent alive.
    WeakGlobal,
}

impl fmt::Display for RefKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RefKind::Local => "local",
            RefKind::Global => "global",
            RefKind::WeakGlobal => "weak-global",
        })
    }
}

/// An opaque reference handed across the simulated JNI boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndirectRef {
    kind: RefKind,
    index: u32,
    serial: u32,
}

impl IndirectRef {
    /// The table kind this reference belongs to.
    pub fn kind(self) -> RefKind {
        self.kind
    }

    /// Slot index inside the owning table.
    pub fn index(self) -> u32 {
        self.index
    }

    /// Slot generation at creation time.
    pub fn serial(self) -> u32 {
        self.serial
    }
}

impl IndirectRef {
    /// Packs the reference into the pointer-sized opaque value real JNI
    /// hands out: `| serial (32) | index (30) | kind (2) |`, mirroring
    /// ART's `IndirectRef` encoding (kind in the low bits so a null check
    /// still works).
    pub fn encode(self) -> u64 {
        let kind_bits = match self.kind {
            RefKind::Local => 1u64,
            RefKind::Global => 2,
            RefKind::WeakGlobal => 3,
        };
        ((self.serial as u64) << 32) | ((self.index as u64) << 2) | kind_bits
    }

    /// Reverses [`encode`](Self::encode). `None` for malformed values
    /// (kind bits 0 — the representation of `null`).
    pub fn decode(raw: u64) -> Option<IndirectRef> {
        let kind = match raw & 0b11 {
            1 => RefKind::Local,
            2 => RefKind::Global,
            3 => RefKind::WeakGlobal,
            _ => return None,
        };
        Some(IndirectRef {
            kind,
            index: ((raw >> 2) & 0x3FFF_FFFF) as u32,
            serial: (raw >> 32) as u32,
        })
    }
}

impl fmt::Display for IndirectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ref[{}#{}]", self.kind, self.index, self.serial)
    }
}

/// Snapshot of a table's segment state (ART's `IRTSegmentState` /
/// the `cookie` argument of `IndirectReferenceTable::Add`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrtCookie {
    top_index: u32,
    num_holes: u32,
    prev_segment_base: u32,
}

#[derive(Debug, Clone, Default)]
struct IrtSlot {
    serial: u32,
    obj: Option<ObjRef>,
}

/// One indirect reference table.
///
/// # Example
///
/// ```
/// use jgre_art::{IndirectRefTable, RefKind};
/// use jgre_art::Heap;
///
/// let mut heap = Heap::new();
/// let obj = heap.alloc("java.lang.Object");
/// let mut table = IndirectRefTable::new(RefKind::Global, 4);
/// let r = table.add(obj)?;
/// assert_eq!(table.get(r)?, obj);
/// table.remove(r)?;
/// assert_eq!(table.len(), 0);
/// # Ok::<(), jgre_art::ArtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IndirectRefTable {
    kind: RefKind,
    capacity: usize,
    slots: Vec<IrtSlot>,
    /// Index one past the highest occupied slot.
    top_index: u32,
    /// Number of empty slots below `top_index`.
    num_holes: u32,
    /// Base of the current segment; entries below it cannot be removed.
    segment_base: u32,
    high_watermark: usize,
    total_adds: u64,
    total_removes: u64,
}

impl IndirectRefTable {
    /// Creates a table of the given kind and hard capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(kind: RefKind, capacity: usize) -> Self {
        assert!(capacity > 0, "reference table capacity must be positive");
        Self {
            kind,
            capacity,
            slots: Vec::new(),
            top_index: 0,
            num_holes: 0,
            segment_base: 0,
            high_watermark: 0,
            total_adds: 0,
            total_removes: 0,
        }
    }

    /// The table's reference kind.
    pub fn kind(&self) -> RefKind {
        self.kind
    }

    /// The hard capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        (self.top_index - self.num_holes) as usize
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest entry count ever reached.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Lifetime add count.
    pub fn total_adds(&self) -> u64 {
        self.total_adds
    }

    /// Lifetime remove count (frame pops included).
    pub fn total_removes(&self) -> u64 {
        self.total_removes
    }

    /// Adds an entry, recycling a hole in the current segment when one
    /// exists (ART's `pscan` path), otherwise appending at the top.
    ///
    /// # Errors
    ///
    /// [`ArtError::TableOverflow`] when the table is at capacity. The caller
    /// ([`Runtime`](crate::Runtime)) escalates a *global* overflow to a
    /// runtime abort.
    pub fn add(&mut self, obj: ObjRef) -> Result<IndirectRef, ArtError> {
        if self.len() >= self.capacity {
            return Err(ArtError::TableOverflow {
                kind: self.kind,
                capacity: self.capacity,
            });
        }
        let index = if self.num_holes > 0 {
            // Scan the current segment for the first hole.
            let mut found = None;
            for i in self.segment_base..self.top_index {
                if self.slots[i as usize].obj.is_none() {
                    found = Some(i);
                    break;
                }
            }
            match found {
                Some(i) => {
                    self.num_holes -= 1;
                    i
                }
                // Holes exist only in earlier segments; append instead.
                None => self.append_index(),
            }
        } else {
            self.append_index()
        };
        let slot = &mut self.slots[index as usize];
        slot.obj = Some(obj);
        let serial = slot.serial;
        self.total_adds += 1;
        self.high_watermark = self.high_watermark.max(self.len());
        Ok(IndirectRef {
            kind: self.kind,
            index,
            serial,
        })
    }

    fn append_index(&mut self) -> u32 {
        let index = self.top_index;
        if index as usize == self.slots.len() {
            self.slots.push(IrtSlot::default());
        }
        self.top_index += 1;
        index
    }

    /// Resolves a reference to its object.
    ///
    /// # Errors
    ///
    /// [`ArtError::InvalidIndirectRef`] on kind mismatch, out-of-range
    /// index, stale serial, or deleted entry.
    pub fn get(&self, iref: IndirectRef) -> Result<ObjRef, ArtError> {
        self.check(iref)?;
        Ok(self.slots[iref.index as usize]
            .obj
            .expect("check() verified occupancy"))
    }

    fn check(&self, iref: IndirectRef) -> Result<(), ArtError> {
        if iref.kind != self.kind {
            return Err(ArtError::InvalidIndirectRef {
                kind: self.kind,
                reason: "kind mismatch",
            });
        }
        if iref.index >= self.top_index {
            return Err(ArtError::InvalidIndirectRef {
                kind: self.kind,
                reason: "index beyond table top",
            });
        }
        let slot = &self.slots[iref.index as usize];
        if slot.obj.is_none() {
            return Err(ArtError::InvalidIndirectRef {
                kind: self.kind,
                reason: "entry already deleted",
            });
        }
        if slot.serial != iref.serial {
            return Err(ArtError::InvalidIndirectRef {
                kind: self.kind,
                reason: "stale serial (slot was recycled)",
            });
        }
        Ok(())
    }

    /// Removes an entry and returns the object it referenced.
    ///
    /// Removing the top entry lowers the top past any trailing holes;
    /// removing an interior entry records a hole for recycling — both as in
    /// ART. Entries below the current segment base cannot be removed.
    ///
    /// # Errors
    ///
    /// [`ArtError::InvalidIndirectRef`] for invalid references or attempts
    /// to remove entries belonging to an outer segment.
    pub fn remove(&mut self, iref: IndirectRef) -> Result<ObjRef, ArtError> {
        self.check(iref)?;
        if iref.index < self.segment_base {
            return Err(ArtError::InvalidIndirectRef {
                kind: self.kind,
                reason: "entry belongs to an outer segment",
            });
        }
        let slot = &mut self.slots[iref.index as usize];
        let obj = slot.obj.take().expect("check() verified occupancy");
        slot.serial = slot.serial.wrapping_add(1);
        self.total_removes += 1;
        if iref.index == self.top_index - 1 {
            self.top_index -= 1;
            // Swallow trailing holes so the top always points at a live
            // entry (ART does the same scan-down).
            while self.top_index > self.segment_base
                && self.slots[(self.top_index - 1) as usize].obj.is_none()
            {
                self.top_index -= 1;
                self.num_holes -= 1;
            }
        } else {
            self.num_holes += 1;
        }
        Ok(obj)
    }

    /// Opens a new segment (a native-call frame for local tables) and
    /// returns the cookie that closes it.
    pub fn push_frame(&mut self) -> IrtCookie {
        let cookie = IrtCookie {
            top_index: self.top_index,
            num_holes: self.num_holes,
            prev_segment_base: self.segment_base,
        };
        self.segment_base = self.top_index;
        cookie
    }

    /// Closes the segment opened by `cookie`, bulk-removing every entry
    /// added since, and returns the released objects.
    ///
    /// # Errors
    ///
    /// [`ArtError::FrameMismatch`] if `cookie` does not correspond to a
    /// currently open segment (pops must nest).
    pub fn pop_frame(&mut self, cookie: IrtCookie) -> Result<Vec<ObjRef>, ArtError> {
        if cookie.top_index > self.top_index || cookie.top_index != self.segment_base {
            return Err(ArtError::FrameMismatch);
        }
        let mut released = Vec::new();
        for i in cookie.top_index..self.top_index {
            let slot = &mut self.slots[i as usize];
            if let Some(obj) = slot.obj.take() {
                slot.serial = slot.serial.wrapping_add(1);
                self.total_removes += 1;
                released.push(obj);
            }
        }
        self.top_index = cookie.top_index;
        self.num_holes = cookie.num_holes;
        self.segment_base = cookie.prev_segment_base;
        Ok(released)
    }

    /// Iterates over the live objects in the table.
    pub fn iter(&self) -> impl Iterator<Item = ObjRef> + '_ {
        self.slots[..self.top_index as usize]
            .iter()
            .filter_map(|s| s.obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Heap;

    fn obj(heap: &mut Heap, n: usize) -> Vec<ObjRef> {
        (0..n).map(|i| heap.alloc(format!("C{i}"))).collect()
    }

    #[test]
    fn add_get_remove_roundtrip() {
        let mut heap = Heap::new();
        let objs = obj(&mut heap, 3);
        let mut t = IndirectRefTable::new(RefKind::Global, 8);
        let refs: Vec<_> = objs.iter().map(|&o| t.add(o).unwrap()).collect();
        assert_eq!(t.len(), 3);
        for (r, o) in refs.iter().zip(&objs) {
            assert_eq!(t.get(*r).unwrap(), *o);
        }
        for r in refs {
            t.remove(r).unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.total_adds(), 3);
        assert_eq!(t.total_removes(), 3);
        assert_eq!(t.high_watermark(), 3);
    }

    #[test]
    fn overflow_at_capacity() {
        let mut heap = Heap::new();
        let mut t = IndirectRefTable::new(RefKind::Global, 2);
        t.add(heap.alloc("a")).unwrap();
        t.add(heap.alloc("b")).unwrap();
        let err = t.add(heap.alloc("c")).unwrap_err();
        assert_eq!(
            err,
            ArtError::TableOverflow {
                kind: RefKind::Global,
                capacity: 2
            }
        );
    }

    #[test]
    fn interior_removal_creates_hole_that_is_recycled() {
        let mut heap = Heap::new();
        let mut t = IndirectRefTable::new(RefKind::Global, 8);
        let a = t.add(heap.alloc("a")).unwrap();
        let b = t.add(heap.alloc("b")).unwrap();
        let _c = t.add(heap.alloc("c")).unwrap();
        t.remove(b).unwrap();
        assert_eq!(t.len(), 2);
        // The hole (index 1) is reused before the table grows.
        let d = t.add(heap.alloc("d")).unwrap();
        assert_eq!(d.index(), b.index());
        assert_ne!(d.serial(), b.serial());
        // The stale reference no longer resolves.
        assert!(t.get(b).is_err());
        assert!(t.get(a).is_ok());
    }

    #[test]
    fn removing_top_swallows_trailing_holes() {
        let mut heap = Heap::new();
        let mut t = IndirectRefTable::new(RefKind::Global, 8);
        let _a = t.add(heap.alloc("a")).unwrap();
        let b = t.add(heap.alloc("b")).unwrap();
        let c = t.add(heap.alloc("c")).unwrap();
        t.remove(b).unwrap(); // hole at 1
        t.remove(c).unwrap(); // removes top, swallows hole
        assert_eq!(t.len(), 1);
        let d = t.add(heap.alloc("d")).unwrap();
        assert_eq!(d.index(), 1, "top reset past the swallowed hole");
    }

    #[test]
    fn frames_nest_and_bulk_release() {
        let mut heap = Heap::new();
        let mut t = IndirectRefTable::new(RefKind::Local, 16);
        let outer = t.add(heap.alloc("outer")).unwrap();
        let cookie = t.push_frame();
        let _i1 = t.add(heap.alloc("i1")).unwrap();
        let i2 = t.add(heap.alloc("i2")).unwrap();
        // Entries below the segment base are protected.
        assert!(t.remove(outer).is_err());
        assert!(t.remove(i2).is_ok());
        let released = t.pop_frame(cookie).unwrap();
        assert_eq!(released.len(), 1);
        assert_eq!(t.len(), 1);
        assert!(t.get(outer).is_ok());
    }

    #[test]
    fn pop_frame_rejects_stale_cookie() {
        let mut heap = Heap::new();
        let mut t = IndirectRefTable::new(RefKind::Local, 16);
        let c1 = t.push_frame();
        t.add(heap.alloc("x")).unwrap();
        let c2 = t.push_frame();
        t.pop_frame(c2).unwrap();
        t.pop_frame(c1).unwrap();
        assert_eq!(t.pop_frame(c2), Err(ArtError::FrameMismatch));
    }

    #[test]
    fn kind_mismatch_detected() {
        let mut heap = Heap::new();
        let mut locals = IndirectRefTable::new(RefKind::Local, 4);
        let globals = IndirectRefTable::new(RefKind::Global, 4);
        let r = locals.add(heap.alloc("x")).unwrap();
        assert!(matches!(
            globals.get(r),
            Err(ArtError::InvalidIndirectRef { .. })
        ));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut heap = Heap::new();
        let mut t = IndirectRefTable::new(RefKind::WeakGlobal, 8);
        let r = t.add(heap.alloc("x")).unwrap();
        let raw = r.encode();
        assert_ne!(raw, 0, "encoded refs are never null");
        assert_eq!(IndirectRef::decode(raw), Some(r));
        assert_eq!(IndirectRef::decode(0), None, "null decodes to nothing");
        // Kind bits distinguish the three tables.
        let mut locals = IndirectRefTable::new(RefKind::Local, 8);
        let l = locals.add(heap.alloc("y")).unwrap();
        assert_ne!(l.encode() & 0b11, raw & 0b11);
    }

    #[test]
    fn len_counts_holes_correctly() {
        let mut heap = Heap::new();
        let mut t = IndirectRefTable::new(RefKind::Global, 100);
        let refs: Vec<_> = (0..10).map(|_| t.add(heap.alloc("x")).unwrap()).collect();
        for r in refs.iter().take(5) {
            t.remove(*r).unwrap();
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.iter().count(), 5);
    }
}
