//! A simulated Java heap with pin-count lifetimes and finalizers.
//!
//! The model is intentionally simpler than a tracing collector but preserves
//! the property the paper's sift rules depend on: an object that nothing
//! *pins* (no JNI reference, no service-side retention) is reclaimed at the
//! next garbage collection, and reclamation runs the object's finalizers —
//! which is how a dead `BinderProxy` deletes the JNI global reference that
//! pinned its native peer.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ArtError, IndirectRef};

/// A handle to a heap object. Handles are generation-checked: using a handle
/// after its object was collected yields [`ArtError::StaleObjRef`] rather
/// than touching a recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjRef {
    index: u32,
    serial: u32,
}

impl ObjRef {
    /// Slot index within the heap (stable for the object's lifetime).
    pub fn index(self) -> u32 {
        self.index
    }

    /// Generation counter distinguishing reuses of the same slot.
    pub fn serial(self) -> u32 {
        self.serial
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj@{}#{}", self.index, self.serial)
    }
}

/// An action run when an object is reclaimed by the collector.
///
/// Finalizers model the release half of Android's reference plumbing: the
/// paper's sift rules 2–4 (§III-C.3) classify IPC methods as *innocent*
/// exactly when the received Binder object becomes unreachable after the
/// call, so its finalizer returns the JNI global reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finalizer {
    /// Delete a global reference from this runtime's JGR table
    /// (`BinderProxy.finalize()` → `android_os_BinderProxy_destroy`).
    DeleteGlobalRef(IndirectRef),
    /// Delete a weak global reference.
    DeleteWeakGlobalRef(IndirectRef),
    /// Unpin another object of the same heap (a container releasing its
    /// element).
    Unpin(ObjRef),
}

#[derive(Debug, Clone)]
struct ObjectRecord {
    class: String,
    pins: u32,
    finalizers: Vec<Finalizer>,
}

#[derive(Debug, Clone, Default)]
struct Slot {
    serial: u32,
    record: Option<ObjectRecord>,
}

/// The simulated heap for one runtime.
///
/// Objects start **unpinned**: they survive until the next collection unless
/// something pins them (a reference-table entry or explicit retention).
///
/// # Example
///
/// ```
/// use jgre_art::Heap;
///
/// let mut heap = Heap::new();
/// let obj = heap.alloc("android.os.Binder");
/// assert_eq!(heap.class_of(obj).unwrap(), "android.os.Binder");
/// heap.pin(obj).unwrap();
/// assert_eq!(heap.live_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Heap {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    total_allocated: u64,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new, unpinned object of `class`.
    pub fn alloc(&mut self, class: impl Into<String>) -> ObjRef {
        let record = ObjectRecord {
            class: class.into(),
            pins: 0,
            finalizers: Vec::new(),
        };
        self.total_allocated += 1;
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.record = Some(record);
            ObjRef {
                index,
                serial: slot.serial,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                serial: 0,
                record: Some(record),
            });
            ObjRef { index, serial: 0 }
        }
    }

    fn record(&self, obj: ObjRef) -> Result<&ObjectRecord, ArtError> {
        self.slots
            .get(obj.index as usize)
            .filter(|s| s.serial == obj.serial)
            .and_then(|s| s.record.as_ref())
            .ok_or(ArtError::StaleObjRef)
    }

    fn record_mut(&mut self, obj: ObjRef) -> Result<&mut ObjectRecord, ArtError> {
        self.slots
            .get_mut(obj.index as usize)
            .filter(|s| s.serial == obj.serial)
            .and_then(|s| s.record.as_mut())
            .ok_or(ArtError::StaleObjRef)
    }

    /// Whether `obj` still refers to a live object.
    pub fn is_live(&self, obj: ObjRef) -> bool {
        self.record(obj).is_ok()
    }

    /// Class name of a live object.
    ///
    /// # Errors
    ///
    /// [`ArtError::StaleObjRef`] if the object was collected.
    pub fn class_of(&self, obj: ObjRef) -> Result<&str, ArtError> {
        self.record(obj).map(|r| r.class.as_str())
    }

    /// Increments the pin count, keeping the object alive across
    /// collections.
    ///
    /// # Errors
    ///
    /// [`ArtError::StaleObjRef`] if the object was collected.
    pub fn pin(&mut self, obj: ObjRef) -> Result<(), ArtError> {
        self.record_mut(obj)?.pins += 1;
        Ok(())
    }

    /// Decrements the pin count.
    ///
    /// # Errors
    ///
    /// [`ArtError::StaleObjRef`] if the object was collected.
    ///
    /// # Panics
    ///
    /// Panics if the pin count is already zero — that is always a bug in the
    /// calling reference-management code, not a recoverable condition.
    pub fn unpin(&mut self, obj: ObjRef) -> Result<(), ArtError> {
        let record = self.record_mut(obj)?;
        assert!(record.pins > 0, "unpin of an unpinned object {obj}");
        record.pins -= 1;
        Ok(())
    }

    /// Current pin count of a live object.
    ///
    /// # Errors
    ///
    /// [`ArtError::StaleObjRef`] if the object was collected.
    pub fn pin_count(&self, obj: ObjRef) -> Result<u32, ArtError> {
        self.record(obj).map(|r| r.pins)
    }

    /// Attaches a finalizer to run when `obj` is collected.
    ///
    /// # Errors
    ///
    /// [`ArtError::StaleObjRef`] if the object was collected.
    pub fn add_finalizer(&mut self, obj: ObjRef, finalizer: Finalizer) -> Result<(), ArtError> {
        self.record_mut(obj)?.finalizers.push(finalizer);
        Ok(())
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total objects ever allocated.
    pub fn total_allocated(&self) -> u64 {
        self.total_allocated
    }

    /// Sweeps one round: frees every unpinned object and returns the freed
    /// handles together with their pending finalizers. The caller
    /// ([`Runtime::collect_garbage`](crate::Runtime::collect_garbage)) is
    /// responsible for executing the finalizers and re-sweeping until a
    /// fixpoint, since finalizers may unpin further objects.
    pub(crate) fn sweep_unpinned(&mut self) -> Vec<(ObjRef, Vec<Finalizer>)> {
        let mut freed = Vec::new();
        for index in 0..self.slots.len() {
            let should_free = matches!(&self.slots[index].record, Some(r) if r.pins == 0);
            if should_free {
                let slot = &mut self.slots[index];
                let record = slot.record.take().expect("checked above");
                let obj = ObjRef {
                    index: index as u32,
                    serial: slot.serial,
                };
                slot.serial = slot.serial.wrapping_add(1);
                self.free.push(index as u32);
                self.live -= 1;
                freed.push((obj, record.finalizers));
            }
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_classes() {
        let mut heap = Heap::new();
        let a = heap.alloc("A");
        let b = heap.alloc("B");
        assert_eq!(heap.class_of(a).unwrap(), "A");
        assert_eq!(heap.class_of(b).unwrap(), "B");
        assert_eq!(heap.live_count(), 2);
        assert_eq!(heap.total_allocated(), 2);
    }

    #[test]
    fn sweep_frees_only_unpinned() {
        let mut heap = Heap::new();
        let pinned = heap.alloc("pinned");
        let loose = heap.alloc("loose");
        heap.pin(pinned).unwrap();
        let freed = heap.sweep_unpinned();
        assert_eq!(freed.len(), 1);
        assert_eq!(freed[0].0, loose);
        assert!(heap.is_live(pinned));
        assert!(!heap.is_live(loose));
    }

    #[test]
    fn stale_handles_are_rejected() {
        let mut heap = Heap::new();
        let obj = heap.alloc("X");
        heap.sweep_unpinned();
        assert_eq!(heap.class_of(obj), Err(ArtError::StaleObjRef));
        assert_eq!(heap.pin(obj), Err(ArtError::StaleObjRef));
        // Slot reuse bumps the serial, so the old handle stays invalid.
        let reused = heap.alloc("Y");
        assert_eq!(reused.index(), obj.index());
        assert_ne!(reused.serial(), obj.serial());
        assert!(heap.is_live(reused));
        assert!(!heap.is_live(obj));
    }

    #[test]
    fn unpin_then_sweep_frees() {
        let mut heap = Heap::new();
        let obj = heap.alloc("X");
        heap.pin(obj).unwrap();
        assert!(heap.sweep_unpinned().is_empty());
        heap.unpin(obj).unwrap();
        assert_eq!(heap.sweep_unpinned().len(), 1);
    }

    #[test]
    #[should_panic(expected = "unpin of an unpinned object")]
    fn unpin_underflow_panics() {
        let mut heap = Heap::new();
        let obj = heap.alloc("X");
        let _ = heap.unpin(obj);
    }

    #[test]
    fn finalizers_are_returned_on_free() {
        let mut heap = Heap::new();
        let a = heap.alloc("A");
        let b = heap.alloc("B");
        heap.pin(b).unwrap();
        heap.add_finalizer(a, Finalizer::Unpin(b)).unwrap();
        let freed = heap.sweep_unpinned();
        assert_eq!(freed, vec![(a, vec![Finalizer::Unpin(b)])]);
    }
}
