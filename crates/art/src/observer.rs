//! Observation hooks for global-reference traffic.
//!
//! The paper's defense (§V-B) "extends Android Runtime to monitor the
//! creation and deletion of JGR entries triggered by each app". This module
//! is that extension point: the defense crate registers a [`JgrObserver`]
//! with each process's [`Runtime`](crate::Runtime) and receives one
//! [`JgrEvent`] per add/remove, stamped with virtual time and the resulting
//! table size.

use std::fmt;
use std::rc::Rc;

use jgre_sim::{Pid, SimTime};
use serde::{Deserialize, Serialize};

/// Whether a global reference was created or deleted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JgrEventKind {
    /// `IndirectReferenceTable::Add` on the globals table.
    Add,
    /// An explicit `DeleteGlobalRef` or a finalizer-driven release.
    Remove,
}

impl fmt::Display for JgrEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JgrEventKind::Add => "add",
            JgrEventKind::Remove => "remove",
        })
    }
}

/// One observed global-reference operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JgrEvent {
    /// Virtual time of the operation.
    pub at: SimTime,
    /// Process whose runtime performed the operation.
    pub pid: Pid,
    /// Add or remove.
    pub kind: JgrEventKind,
    /// Size of the global table immediately after the operation.
    pub table_size_after: usize,
}

/// Receiver of [`JgrEvent`]s.
///
/// Implementations must tolerate being called for every single JGR
/// operation on a hot path; the paper measures ~1 µs recording overhead
/// once the alarm threshold is crossed.
pub trait JgrObserver {
    /// Called synchronously after each global add/remove.
    fn on_jgr_event(&self, event: JgrEvent);
}

/// A small registry of shared observers.
///
/// # Example
///
/// ```
/// use std::cell::Cell;
/// use std::rc::Rc;
/// use jgre_art::{JgrEvent, JgrEventKind, JgrObserver, ObserverRegistry};
/// use jgre_sim::{Pid, SimTime};
///
/// struct Counter(Cell<u32>);
/// impl JgrObserver for Counter {
///     fn on_jgr_event(&self, _: JgrEvent) {
///         self.0.set(self.0.get() + 1);
///     }
/// }
///
/// let counter = Rc::new(Counter(Cell::new(0)));
/// let mut registry = ObserverRegistry::new();
/// registry.register(counter.clone());
/// registry.emit(JgrEvent {
///     at: SimTime::ZERO,
///     pid: Pid::new(1),
///     kind: JgrEventKind::Add,
///     table_size_after: 1,
/// });
/// assert_eq!(counter.0.get(), 1);
/// ```
#[derive(Clone, Default)]
pub struct ObserverRegistry {
    observers: Vec<Rc<dyn JgrObserver>>,
}

impl ObserverRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observer; it stays registered until the runtime dies or
    /// [`clear`](Self::clear) is called.
    pub fn register(&mut self, observer: Rc<dyn JgrObserver>) {
        self.observers.push(observer);
    }

    /// Drops every registered observer (a monitoring process died; its
    /// successor re-registers after recovery).
    pub fn clear(&mut self) {
        self.observers.clear();
    }

    /// Number of registered observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// Whether no observers are registered.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    /// Delivers `event` to every observer in registration order.
    pub fn emit(&self, event: JgrEvent) {
        for observer in &self.observers {
            observer.on_jgr_event(event);
        }
    }
}

impl fmt::Debug for ObserverRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObserverRegistry")
            .field("observers", &self.observers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    struct Recorder(RefCell<Vec<JgrEvent>>);
    impl JgrObserver for Recorder {
        fn on_jgr_event(&self, event: JgrEvent) {
            self.0.borrow_mut().push(event);
        }
    }

    #[test]
    fn emit_fans_out_in_order() {
        let a = Rc::new(Recorder(RefCell::new(Vec::new())));
        let b = Rc::new(Recorder(RefCell::new(Vec::new())));
        let mut reg = ObserverRegistry::new();
        reg.register(a.clone());
        reg.register(b.clone());
        assert_eq!(reg.len(), 2);
        let ev = JgrEvent {
            at: SimTime::from_micros(9),
            pid: Pid::new(3),
            kind: JgrEventKind::Remove,
            table_size_after: 7,
        };
        reg.emit(ev);
        assert_eq!(a.0.borrow().as_slice(), &[ev]);
        assert_eq!(b.0.borrow().as_slice(), &[ev]);
    }

    #[test]
    fn empty_registry_is_noop() {
        let reg = ObserverRegistry::new();
        assert!(reg.is_empty());
        reg.emit(JgrEvent {
            at: SimTime::ZERO,
            pid: Pid::new(1),
            kind: JgrEventKind::Add,
            table_size_after: 1,
        });
    }
}
