//! Property-based tests for the reference-table and heap invariants.

use jgre_art::{ArtError, Heap, IndirectRef, IndirectRefTable, RefKind, Runtime, RuntimeState};
use jgre_sim::{Pid, SimClock, TraceSink};
use proptest::prelude::*;

/// A random sequence of table operations, interpreted against both the real
/// table and a naive model (a `Vec<Option<ObjRef>>` keyed by handed-out
/// references).
#[derive(Debug, Clone)]
enum Op {
    Add,
    /// Remove the n-th (mod len) still-live reference we hold.
    Remove(usize),
    /// Attempt to remove a reference that was already removed.
    RemoveStale(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Add),
        2 => any::<usize>().prop_map(Op::Remove),
        1 => any::<usize>().prop_map(Op::RemoveStale),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The table's `len()` always equals live adds minus removes, no stale
    /// reference ever resolves, and the high watermark is monotone.
    #[test]
    fn irt_len_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut heap = Heap::new();
        let mut table = IndirectRefTable::new(RefKind::Global, 1024);
        let mut live: Vec<IndirectRef> = Vec::new();
        let mut dead: Vec<IndirectRef> = Vec::new();
        let mut watermark = 0usize;

        for op in ops {
            match op {
                Op::Add => {
                    let obj = heap.alloc("x");
                    let iref = table.add(obj).unwrap();
                    live.push(iref);
                }
                Op::Remove(n) => {
                    if !live.is_empty() {
                        let iref = live.remove(n % live.len());
                        table.remove(iref).unwrap();
                        dead.push(iref);
                    }
                }
                Op::RemoveStale(n) => {
                    if !dead.is_empty() {
                        let iref = dead[n % dead.len()];
                        prop_assert!(table.remove(iref).is_err(),
                            "stale reference must not resolve");
                    }
                }
            }
            prop_assert_eq!(table.len(), live.len());
            watermark = watermark.max(live.len());
            prop_assert_eq!(table.high_watermark(), watermark);
            // Every live reference still resolves.
            for &iref in &live {
                prop_assert!(table.get(iref).is_ok());
            }
        }
        prop_assert_eq!(table.iter().count(), live.len());
    }

    /// Filling a runtime to capacity aborts on exactly the (cap+1)-th add,
    /// regardless of interleaved deletes.
    #[test]
    fn runtime_aborts_exactly_at_cap(cap in 1usize..64, churn in 0usize..32) {
        let mut rt = Runtime::with_global_capacity(
            Pid::new(1), SimClock::new(), TraceSink::disabled(), cap);
        // Churn: add/delete pairs never bring us closer to the cap.
        for _ in 0..churn {
            let o = rt.alloc("churn");
            let r = rt.add_global(o).unwrap();
            rt.delete_global(r).unwrap();
        }
        for _ in 0..cap {
            let o = rt.alloc("fill");
            rt.add_global(o).unwrap();
        }
        prop_assert_eq!(rt.state(), RuntimeState::Running);
        let o = rt.alloc("overflow");
        let overflowed = matches!(rt.add_global(o), Err(ArtError::TableOverflow { .. }));
        prop_assert!(overflowed);
        prop_assert_eq!(rt.state(), RuntimeState::Aborted);
    }

    /// GC preserves exactly the pinned objects: after any sequence of
    /// alloc/retain/release, collection frees precisely the unpinned ones.
    #[test]
    fn gc_frees_exactly_unpinned(pins in proptest::collection::vec(any::<bool>(), 1..100)) {
        let mut rt = Runtime::new(Pid::new(1), SimClock::new(), TraceSink::disabled());
        let objs: Vec<_> = pins.iter().map(|&pinned| {
            let o = rt.alloc("obj");
            if pinned {
                rt.retain(o).unwrap();
            }
            o
        }).collect();
        let stats = rt.collect_garbage();
        let expected_freed = pins.iter().filter(|p| !**p).count();
        prop_assert_eq!(stats.freed_objects, expected_freed);
        for (o, pinned) in objs.iter().zip(&pins) {
            prop_assert_eq!(rt.is_live(*o), *pinned);
        }
    }

    /// Local frames always restore the pre-frame count, however many locals
    /// each nested frame creates.
    #[test]
    fn local_frames_restore_counts(frames in proptest::collection::vec(0usize..20, 1..8)) {
        let mut rt = Runtime::new(Pid::new(1), SimClock::new(), TraceSink::disabled());
        let env = rt.attach_thread(jgre_sim::Tid::new(1));
        let mut cookies = Vec::new();
        let mut expected = vec![0usize];
        for &n in &frames {
            cookies.push(rt.push_local_frame(env).unwrap());
            for _ in 0..n {
                let o = rt.alloc("local");
                rt.add_local(env, o).unwrap();
            }
            expected.push(rt.local_count(env).unwrap());
        }
        for cookie in cookies.into_iter().rev() {
            expected.pop();
            rt.pop_local_frame(env, cookie).unwrap();
            prop_assert_eq!(rt.local_count(env).unwrap(), *expected.last().unwrap());
        }
        prop_assert_eq!(rt.local_count(env).unwrap(), 0);
    }
}
