//! The catalog and code model are data: they must survive JSON
//! round-trips bit-for-bit (downstream tooling exports them).

use jgre_corpus::{spec::AospSpec, CodeModel};

#[test]
fn spec_roundtrips_through_json() {
    let spec = AospSpec::android_6_0_1();
    let json = serde_json::to_string(&spec).expect("spec serialises");
    let back: AospSpec = serde_json::from_str(&json).expect("spec deserialises");
    assert_eq!(spec, back);
    // The catalog is a non-trivial document.
    assert!(json.len() > 100_000, "unexpectedly small: {}", json.len());
}

#[test]
fn model_roundtrips_through_json() {
    let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
    let json = serde_json::to_string(&model).expect("model serialises");
    let back: CodeModel = serde_json::from_str(&json).expect("model deserialises");
    assert_eq!(model, back);
}

#[test]
fn golden_catalog_facts() {
    // A handful of exact values pinned against accidental catalog drift;
    // every number here is traceable to the paper.
    let spec = AospSpec::android_6_0_1();
    let wifi = spec.service("wifi").expect("wifi exists");
    assert_eq!(wifi.interface, "IWifiManager");
    let toast = spec
        .service("notification")
        .unwrap()
        .method("enqueueToast")
        .unwrap();
    assert_eq!(
        toast.cost.expected_exhaustion_us(jgre_corpus::JGR_CAP, 1) / 1_000_000,
        1_800,
        "the slowest exhaustion is pinned at 1800 s"
    );
    let audio = spec
        .service("audio")
        .unwrap()
        .method("startWatchingRoutes")
        .unwrap();
    assert_eq!(
        audio.cost.expected_exhaustion_us(jgre_corpus::JGR_CAP, 1) / 1_000_000,
        100,
        "the fastest exhaustion is pinned at 100 s"
    );
    let pico = spec.prebuilt_app("PicoTts").expect("PicoTts exists");
    assert_eq!(pico.code_path, "external/svox/pico");
    assert_eq!(
        spec.third_party_apps.len()
            - spec
                .third_party_apps
                .iter()
                .filter(|a| a.vulnerable_interface.is_some())
                .count(),
        997
    );
}
