//! A synthetic AOSP 6.0.1 model for the JGRE reproduction.
//!
//! The paper analyses the real Android Open Source Project tree with SOOT,
//! PScout, and hand-built extractors. That tree is not available to a pure
//! Rust build, so this crate supplies two connected substitutes:
//!
//! * [`spec`] — the **ground truth**: a declarative catalog of all 104
//!   system services of Android 6.0.1, every IPC method they expose, each
//!   method's permission, server/helper-side protection, and how its
//!   handler treats received binder objects (the [`JgrBehavior`] that
//!   decides whether global references leak). The vulnerable entries are
//!   transcribed from the paper's Tables I–V; the innocent bulk is
//!   generated so the catalog reaches the paper's scale (~2000 IPC
//!   methods, 88 prebuilt apps, 1000 third-party apps).
//! * [`model`] — a **code model**: classes, methods, call edges, JNI
//!   registrations, and parameter-usage facts *synthesised from the spec*,
//!   statistically shaped like the AOSP framework. The `jgre-analysis`
//!   crate runs the paper's four-step pipeline against this model and must
//!   *re-derive* the ground truth (32 services / 54 interfaces, 147 native
//!   paths with 67 init-only, …) by graph analysis — nothing in the
//!   analysis reads the spec's vulnerability flags directly.
//!
//! # Example
//!
//! ```
//! use jgre_corpus::spec::AospSpec;
//!
//! let aosp = AospSpec::android_6_0_1();
//! assert_eq!(aosp.services.len(), 104);
//! assert_eq!(aosp.vulnerable_service_interfaces().count(), 54);
//! assert_eq!(aosp.prebuilt_apps.len(), 88);
//! ```

pub mod body;
pub mod model;
pub mod spec;

pub use body::{
    synthesize_body, AllocSite, BodyStmt, BranchKind, FieldKind, MethodBody, Place, Var,
};
pub use model::{
    error_path_cases, service_class_name, ClassDef, CodeModel, JniRegistration, MethodDef,
    MethodId, NativeFunction, NativeFunctionId, Origin, ParamUsage, ERROR_PATH_CLASS,
};
pub use spec::{
    AospSpec, AppSpec, CostParams, Flaw, JgrBehavior, MethodSpec, Permission, Protection,
    ProtectionLevel, ServiceSpec, ThirdPartyAppSpec, JGR_CAP,
};
