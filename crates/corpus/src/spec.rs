//! Ground-truth catalog of the simulated Android 6.0.1.
//!
//! The vulnerable entries are transcribed from the paper:
//!
//! * **Table I** — 44 unprotected vulnerable IPC interfaces across 26
//!   system services, with the required permission and its protection
//!   level.
//! * **Table II** — 9 interfaces "protected" only by a client-side helper
//!   class threshold (all bypassable by talking to Binder directly).
//! * **Table III** — 4 interfaces with a server-side per-process limit, of
//!   which `notification.enqueueToast` is bypassable by spoofing the
//!   package name `"android"` and the display/input three are sound.
//! * **Table IV** — 3 vulnerable IPC methods in 2 of the 88 prebuilt apps
//!   (PicoTts, Bluetooth).
//! * **Table V** — 3 vulnerable apps found among 1000 Google Play apps.
//!
//! Everything else (the other 72 services, their ~2000 innocent IPC
//! methods, the other 86 prebuilt apps, the other 997 Play apps) is
//! generated deterministically so the corpus reaches the paper's scale.
//!
//! Timing constants are chosen so the *shapes* of Figures 3, 5 and 6 hold:
//! per-call execution cost is `base + slope × (retained entries)`, with
//! `audio.startWatchingRoutes` exhausting the 51200-entry table in ≈100 s
//! (the paper's fastest) and `notification.enqueueToast` in ≈1800 s (the
//! slowest), the rest log-spaced in between.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Hard cap on JNI global references per runtime (see
/// [`jgre-art`](https://docs.rs)'s `MAX_GLOBAL_REFS`; duplicated here so the
/// corpus crate stays dependency-free).
pub const JGR_CAP: usize = 51_200;

/// Android permission protection levels relevant to the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProtectionLevel {
    /// Granted automatically at install time.
    Normal,
    /// Requires explicit user consent.
    Dangerous,
    /// Only grantable to apps signed with the platform key — third-party
    /// apps can never hold these, so the PScout-style permission filter
    /// (§III-C.3) removes methods guarded by them from the risky set.
    Signature,
}

/// The permissions appearing in the paper's Table I, plus the ones our
/// catalog assigns to the Table II services (the paper does not list
/// those; see DESIGN.md §5 for the assignment rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Permission {
    /// `ACCESS_FINE_LOCATION` (dangerous).
    AccessFineLocation,
    /// `USE_SIP` (dangerous).
    UseSip,
    /// `READ_PHONE_STATE` (dangerous).
    ReadPhoneState,
    /// `BLUETOOTH` (normal).
    Bluetooth,
    /// `WAKE_LOCK` (normal).
    WakeLock,
    /// `GET_PACKAGE_SIZE` (normal).
    GetPackageSize,
    /// `CHANGE_NETWORK_STATE` (normal).
    ChangeNetworkState,
    /// `ACCESS_NETWORK_STATE` (normal).
    AccessNetworkState,
    /// `MANAGE_USERS` (normal) — assigned to `launcherapps`.
    ManageUsers,
    /// `INTERNET` (normal) — used by generated innocent methods.
    Internet,
    /// `VIBRATE` (normal) — used by generated innocent methods.
    Vibrate,
    /// `WRITE_SECURE_SETTINGS` (signature) — guards retaining methods that
    /// are nevertheless *not* vulnerable because no third-party app can
    /// hold the permission.
    WriteSecureSettings,
    /// `DEVICE_POWER` (signature).
    DevicePower,
}

impl Permission {
    /// The AOSP protection level of this permission.
    pub fn level(self) -> ProtectionLevel {
        match self {
            Permission::AccessFineLocation | Permission::UseSip | Permission::ReadPhoneState => {
                ProtectionLevel::Dangerous
            }
            Permission::WriteSecureSettings | Permission::DevicePower => ProtectionLevel::Signature,
            _ => ProtectionLevel::Normal,
        }
    }

    /// The AOSP manifest name.
    pub fn manifest_name(self) -> &'static str {
        match self {
            Permission::AccessFineLocation => "android.permission.ACCESS_FINE_LOCATION",
            Permission::UseSip => "android.permission.USE_SIP",
            Permission::ReadPhoneState => "android.permission.READ_PHONE_STATE",
            Permission::Bluetooth => "android.permission.BLUETOOTH",
            Permission::WakeLock => "android.permission.WAKE_LOCK",
            Permission::GetPackageSize => "android.permission.GET_PACKAGE_SIZE",
            Permission::ChangeNetworkState => "android.permission.CHANGE_NETWORK_STATE",
            Permission::AccessNetworkState => "android.permission.ACCESS_NETWORK_STATE",
            Permission::ManageUsers => "android.permission.MANAGE_USERS",
            Permission::Internet => "android.permission.INTERNET",
            Permission::Vibrate => "android.permission.VIBRATE",
            Permission::WriteSecureSettings => "android.permission.WRITE_SECURE_SETTINGS",
            Permission::DevicePower => "android.permission.DEVICE_POWER",
        }
    }
}

/// How an IPC handler treats the binder objects it receives — the fact the
/// paper's sift rules (§III-C.3) classify on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JgrBehavior {
    /// The handler stores received binders in a member collection; the JNI
    /// global references live until the caller's process dies. **This is
    /// the vulnerable pattern.**
    RetainPerCall {
        /// Global references created per call (listener + death recipient
        /// pairs etc.).
        grefs_per_call: u32,
    },
    /// Sift rules 2–3: the binder is used only inside the call (or as a
    /// read-only map key); GC collects it afterwards.
    Transient,
    /// Sift rule 4: the binder is assigned to a single member field; a
    /// repeat call from the same app replaces (and releases) the previous
    /// one, so at most one reference per caller accumulates.
    ReplaceSingle,
    /// Sift rule 1: only `Thread.nativeCreate`, whose native side releases
    /// the reference immediately.
    ThreadCreateOnly,
    /// The handler never touches a JGR entry point.
    NoJgr,
}

impl JgrBehavior {
    /// Whether this behaviour accumulates unbounded global references.
    pub fn retains_unbounded(self) -> bool {
        matches!(self, JgrBehavior::RetainPerCall { .. })
    }
}

/// A flaw in a server-side protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Flaw {
    /// `NotificationManagerService.enqueueToast` trusts the caller-supplied
    /// package name: passing `"android"` marks the toast as a system toast
    /// and skips the per-package cap (Code-Snippet 3).
    SystemPackageSpoof,
}

/// Protection applied to an IPC method against excessive JGR requests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protection {
    /// Nothing — Table I's 44 interfaces.
    None,
    /// A threshold enforced in the *client-side* helper class
    /// (Code-Snippet 1). Malicious apps bypass it by calling Binder
    /// directly (Code-Snippet 2) — Table II's 9 interfaces.
    HelperThreshold {
        /// Helper class name, e.g. `"WifiManager"`.
        helper_class: String,
        /// Maximum retained entries the helper allows per process
        /// (`MAX_ACTIVE_LOCKS` is 50 for wifi).
        limit: u32,
    },
    /// A per-process cap enforced inside the service — Table III. Sound
    /// unless `flaw` is set.
    PerProcessLimit {
        /// Maximum retained entries per calling process.
        limit: u32,
        /// An implementation flaw making the cap bypassable.
        flaw: Option<Flaw>,
    },
}

impl Protection {
    /// Whether any protection (sound or not) exists — the paper's "13
    /// interfaces have been protected".
    pub fn exists(&self) -> bool {
        !matches!(self, Protection::None)
    }

    /// Whether the protection actually stops a malicious app that talks to
    /// Binder directly.
    pub fn is_effective_server_side(&self) -> bool {
        matches!(self, Protection::PerProcessLimit { flaw: None, .. })
    }
}

/// Execution-cost model of one IPC method.
///
/// Cost of the n-th call (with `n` entries already retained for this
/// interface) is `base_us + slope_us_per_entry × n ± jitter_us`; the JGR
/// entry is created `delay_us` after the handler starts (the paper's
/// `Delay` constant of Observation 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Fixed handler cost, µs.
    pub base_us: u64,
    /// Marginal cost per already-retained entry, µs (Figure 5's growth).
    pub slope_us_per_entry: f64,
    /// Half-width of the uniform jitter band, µs (the paper's Δ).
    pub jitter_us: u64,
    /// Constant latency from call start to JGR creation, µs (the paper's
    /// `Delay`).
    pub delay_us: u64,
}

impl CostParams {
    /// A flat, cheap cost for innocent methods.
    pub fn innocent(base_us: u64) -> Self {
        Self {
            base_us,
            slope_us_per_entry: 0.0,
            jitter_us: base_us / 5,
            delay_us: base_us / 2,
        }
    }

    /// Expected cost (µs, jitter-free) of a call when `entries` are
    /// already retained.
    pub fn expected_us(&self, entries: usize) -> u64 {
        self.base_us + (self.slope_us_per_entry * entries as f64).round() as u64
    }

    /// Expected virtual time (µs) to drive a table from empty to `cap`
    /// entries at `grefs_per_call` per call, including the mean jitter.
    pub fn expected_exhaustion_us(&self, cap: usize, grefs_per_call: u32) -> u64 {
        let g = grefs_per_call.max(1) as u64;
        let calls = (cap as u64).div_ceil(g);
        let mut total = 0u64;
        // Closed form of sum(base + E[jitter] + slope * g * k) over
        // k in 0..calls.
        total += (self.base_us + self.jitter_us / 2) * calls;
        total += (self.slope_us_per_entry * g as f64 * (calls as f64) * (calls as f64 - 1.0) / 2.0)
            .round() as u64;
        total
    }
}

/// One IPC method of a service (or of a prebuilt app's exported service).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodSpec {
    /// Method name as it appears in the AIDL interface.
    pub name: String,
    /// Permission a third-party caller must hold, if any.
    pub permission: Option<Permission>,
    /// Anti-JGRE protection, if any.
    pub protection: Protection,
    /// How the handler treats received binders.
    pub jgr: JgrBehavior,
    /// Execution-cost model.
    pub cost: CostParams,
}

impl MethodSpec {
    /// Whether a third-party app can ever invoke this method: true unless
    /// it is guarded by a signature-level permission.
    pub fn callable_by_third_party(&self) -> bool {
        self.permission
            .is_none_or(|p| p.level() != ProtectionLevel::Signature)
    }

    /// Ground truth: can a malicious third-party app use this method to
    /// grow the host's JGR table without bound? (Normal/dangerous
    /// permissions may still gate *which* apps can; see
    /// [`Self::permission`].)
    pub fn is_vulnerable(&self) -> bool {
        self.jgr.retains_unbounded()
            && !self.protection.is_effective_server_side()
            && self.callable_by_third_party()
    }

    /// Vulnerable and callable with zero permissions.
    pub fn is_zero_permission_vulnerable(&self) -> bool {
        self.is_vulnerable() && self.permission.is_none()
    }
}

/// One system service (or app-exported service).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Registered name, e.g. `"clipboard"`.
    pub name: String,
    /// AIDL interface descriptor, e.g. `"IClipboard"`.
    pub interface: String,
    /// Whether the service is implemented in native code (5 of the 104;
    /// they register via `ServiceManager::addService` in C++).
    pub native: bool,
    /// Exposed IPC methods.
    pub methods: Vec<MethodSpec>,
}

impl ServiceSpec {
    /// Looks up a method by name.
    pub fn method(&self, name: &str) -> Option<&MethodSpec> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Whether any method is vulnerable.
    pub fn is_vulnerable(&self) -> bool {
        self.methods.iter().any(MethodSpec::is_vulnerable)
    }

    /// Whether the service can be attacked with zero permissions.
    pub fn is_zero_permission_vulnerable(&self) -> bool {
        self.methods
            .iter()
            .any(MethodSpec::is_zero_permission_vulnerable)
    }
}

/// A prebuilt (system image) app; some export IPC services of their own.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Display name, e.g. `"Bluetooth"`.
    pub name: String,
    /// Package, e.g. `"com.android.bluetooth"`.
    pub package: String,
    /// AOSP source path, e.g. `"packages/apps/Bluetooth"`.
    pub code_path: String,
    /// IPC services the app exports to third parties (empty for most).
    pub services: Vec<ServiceSpec>,
}

impl AppSpec {
    /// Whether the app exports at least one vulnerable IPC method.
    pub fn is_vulnerable(&self) -> bool {
        self.services.iter().any(ServiceSpec::is_vulnerable)
    }
}

/// A Google Play (third-party) app from the paper's 1000-app sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThirdPartyAppSpec {
    /// Display name.
    pub name: String,
    /// Package name.
    pub package: String,
    /// Install-count band as Play reports it, e.g. `"1e6-5e6"`.
    pub downloads: String,
    /// The vulnerable exported interface/method, if any (Table V).
    pub vulnerable_interface: Option<(String, String)>,
}

/// The complete ground-truth model of the analysed device image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AospSpec {
    /// All 104 system services.
    pub services: Vec<ServiceSpec>,
    /// All 88 prebuilt apps.
    pub prebuilt_apps: Vec<AppSpec>,
    /// The 1000 Play-store apps of the Table V sweep.
    pub third_party_apps: Vec<ThirdPartyAppSpec>,
}

impl AospSpec {
    /// Builds the full Android 6.0.1 catalog.
    ///
    /// # Example
    ///
    /// ```
    /// let aosp = jgre_corpus::spec::AospSpec::android_6_0_1();
    /// let vulnerable_services: std::collections::BTreeSet<_> = aosp
    ///     .vulnerable_service_interfaces()
    ///     .map(|(s, _)| s.name.as_str())
    ///     .collect();
    /// assert_eq!(vulnerable_services.len(), 32);
    /// ```
    pub fn android_6_0_1() -> Self {
        build_catalog()
    }

    /// Finds a system service by registered name.
    pub fn service(&self, name: &str) -> Option<&ServiceSpec> {
        self.services.iter().find(|s| s.name == name)
    }

    /// Finds a prebuilt app by display name.
    pub fn prebuilt_app(&self, name: &str) -> Option<&AppSpec> {
        self.prebuilt_apps.iter().find(|a| a.name == name)
    }

    /// All `(service, method)` pairs vulnerable in *system services*
    /// (the paper's 54).
    pub fn vulnerable_service_interfaces(
        &self,
    ) -> impl Iterator<Item = (&ServiceSpec, &MethodSpec)> {
        self.services.iter().flat_map(|s| {
            s.methods
                .iter()
                .filter(|m| m.is_vulnerable())
                .map(move |m| (s, m))
        })
    }

    /// All `(app, service, method)` triples vulnerable in prebuilt apps
    /// (the paper's 3).
    pub fn vulnerable_prebuilt_interfaces(
        &self,
    ) -> impl Iterator<Item = (&AppSpec, &ServiceSpec, &MethodSpec)> {
        self.prebuilt_apps.iter().flat_map(|a| {
            a.services.iter().flat_map(move |s| {
                s.methods
                    .iter()
                    .filter(|m| m.is_vulnerable())
                    .map(move |m| (a, s, m))
            })
        })
    }

    /// Names of the system services attackable with zero permissions
    /// (the paper's 22).
    pub fn zero_permission_vulnerable_services(&self) -> BTreeSet<&str> {
        self.services
            .iter()
            .filter(|s| s.is_zero_permission_vulnerable())
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Total number of IPC methods exposed by system services.
    pub fn total_ipc_methods(&self) -> usize {
        self.services.iter().map(|s| s.methods.len()).sum()
    }
}

// --------------------------------------------------------------------------
// Catalog construction
// --------------------------------------------------------------------------

/// FNV-1a, used to derive stable per-name variety without an RNG.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derives the cost parameters that exhaust the table in ~`target_secs` of
/// virtual time at `grefs_per_call` references per call, with base kept
/// under the Figure 6 envelope (≤ ~6 ms for the first 1000 calls).
fn vulnerable_cost(name_key: &str, target_secs: u64, grefs_per_call: u32) -> CostParams {
    let g = grefs_per_call.max(1) as u64;
    let calls = (JGR_CAP as u64).div_ceil(g);
    let t_us = target_secs * 1_000_000;
    let per_call_budget = t_us / calls;
    let h = fnv(name_key);
    // Δ spread per interface: 100–3500 µs (Figure 6's envelope), mean near
    // the paper's 1.8 ms, but capped so the mean jitter fits the exhaustion
    // budget. The fastest interface gets a pinned small deviation so its
    // fixed per-call cost is the minimum at any table scale.
    let jitter_us = if name_key == "audio.startWatchingRoutes" {
        300
    } else {
        (100 + h % 3_400).min(per_call_budget.saturating_mul(6) / 5)
    };
    // The paper's fastest interface gets the floor base cost so it stays
    // the fastest at any table scale (slope dominates its budget).
    let base_us = if name_key == "audio.startWatchingRoutes" {
        200
    } else {
        (t_us / (5 * calls)).clamp(200, 5_500)
    };
    // The slope absorbs whatever budget the fixed costs (base + mean
    // jitter) leave, so the expected exhaustion time hits the target.
    let fixed_us = base_us + jitter_us / 2;
    let remainder = t_us.saturating_sub(fixed_us * calls) as f64;
    let slope = 2.0 * remainder / (g as f64 * calls as f64 * (calls as f64 - 1.0));
    // Delay constant (IPC call → JGR creation): 100–3000 µs for most
    // interfaces. Three interfaces create their references through slow
    // asynchronous machinery (server process spawn, session setup); their
    // large Delay is why §V-D.1 reports detection taking more than one
    // second for exactly three interfaces, with
    // `midi.registerDeviceServer` the slowest at ≈3.6 s.
    let delay_us = match name_key {
        // Slower than any handler execution: creation effectively lands at
        // handler completion, so the observed IPC→JGR latency tracks the
        // (growing, widely spread) execution time — the defender must
        // escalate to its widest correlation window.
        "midi.registerDeviceServer" => 25_000,
        "sip.open3" => 7_500,
        "print.createPrinterDiscoverySession" => 8_300,
        _ => 100 + (h >> 17) % 2_900,
    };
    CostParams {
        base_us,
        slope_us_per_entry: slope,
        jitter_us,
        delay_us,
    }
}

struct VulnRow {
    service: &'static str,
    method: &'static str,
    permission: Option<Permission>,
    protection: Protection,
    grefs_per_call: u32,
    /// Pinned exhaustion target (secs); `None` = log-spaced.
    target_secs: Option<u64>,
}

fn vuln(service: &'static str, method: &'static str, permission: Option<Permission>) -> VulnRow {
    VulnRow {
        service,
        method,
        permission,
        protection: Protection::None,
        grefs_per_call: 1,
        target_secs: None,
    }
}

fn helper(
    service: &'static str,
    method: &'static str,
    permission: Option<Permission>,
    helper_class: &'static str,
    limit: u32,
) -> VulnRow {
    VulnRow {
        service,
        method,
        permission,
        protection: Protection::HelperThreshold {
            helper_class: helper_class.to_owned(),
            limit,
        },
        grefs_per_call: 1,
        target_secs: None,
    }
}

/// Table I — the 44 unprotected vulnerable interfaces, verbatim.
fn table1_rows() -> Vec<VulnRow> {
    use Permission::*;
    let mut rows = vec![
        vuln("location", "addGpsStatusListener", Some(AccessFineLocation)),
        vuln("sip", "open3", Some(UseSip)),
        vuln("sip", "createSession", Some(UseSip)),
        vuln("midi", "registerListener", None),
        vuln("midi", "openDevice", None),
        vuln("midi", "openBluetoothDevice", None),
        vuln("midi", "registerDeviceServer", None),
        vuln("content", "registerContentObserver", None),
        vuln("content", "addStatusChangeListener", None),
        vuln("mount", "registerListener", None),
        vuln("appops", "startWatchingMode", None),
        vuln("appops", "getToken", None),
        vuln("bluetooth_manager", "registerAdapter", None),
        vuln(
            "bluetooth_manager",
            "registerStateChangeCallback",
            Some(Bluetooth),
        ),
        // The paper's Table I lists bindBluetoothProfileService twice
        // (two overloads); we keep both with disambiguated names.
        vuln("bluetooth_manager", "bindBluetoothProfileService", None),
        vuln("bluetooth_manager", "bindBluetoothProfileService2", None),
        vuln("audio", "registerRemoteController", None),
        vuln("audio", "startWatchingRoutes", None),
        vuln("country_detector", "addCountryListener", None),
        vuln("power", "acquireWakeLock", Some(WakeLock)),
        vuln("input_method", "addClient", None),
        vuln(
            "accessibility",
            "addAccessibilityInteractionConnection",
            None,
        ),
        vuln("print", "print", None),
        vuln("print", "addPrintJobStateChangeListener", None),
        vuln("print", "createPrinterDiscoverySession", None),
        vuln("package", "getPackageSizeInfo", Some(GetPackageSize)),
        vuln(
            "telephony.registry",
            "addOnSubscriptionsChangedListener",
            Some(ReadPhoneState),
        ),
        vuln("telephony.registry", "listen", Some(ReadPhoneState)),
        vuln(
            "telephony.registry",
            "listenForSubscriber",
            Some(ReadPhoneState),
        ),
        vuln("media_session", "registerCallbackListener", None),
        vuln("media_session", "createSession", None),
        vuln("media_router", "registerClientAsUser", None),
        vuln("media_projection", "registerCallback", None),
        vuln("input", "vibrate", None),
        vuln("window", "watchRotation", None),
        vuln("wallpaper", "getWallpaper", None),
        vuln("fingerprint", "addLockoutResetCallback", None),
        vuln("textservices", "getSpellCheckerService", None),
        vuln(
            "network_management",
            "registerNetworkActivityListener",
            Some(ChangeNetworkState),
        ),
        vuln("connectivity", "requestNetwork", Some(ChangeNetworkState)),
        vuln("connectivity", "listenForNetwork", Some(AccessNetworkState)),
        vuln("activity", "registerTaskStackListener", None),
        vuln("activity", "registerReceiver", None),
        vuln("activity", "bindService", None),
    ];
    // Pinned timing shapes (see module docs): fastest / slowest / Figure 5
    // subject / the slow-to-detect midi interface (many refs per call).
    for row in &mut rows {
        match (row.service, row.method) {
            ("audio", "startWatchingRoutes") => row.target_secs = Some(100),
            ("telephony.registry", "listenForSubscriber") => row.target_secs = Some(1_500),
            ("midi", "registerDeviceServer") => {
                row.grefs_per_call = 4;
                row.target_secs = Some(400);
            }
            // The other two slow-to-detect interfaces (§V-D.1): pinned
            // slow enough that their base cost rides the clamp, so the
            // observed IPC→JGR latency approaches their large Delay.
            ("sip", "open3") => row.target_secs = Some(1_550),
            ("print", "createPrinterDiscoverySession") => row.target_secs = Some(1_450),
            _ => {}
        }
    }
    rows
}

/// Table II — 9 interfaces whose only protection is a helper-class
/// threshold; plus Table III's notification row (flawed per-process limit).
fn table2_and_3_rows() -> Vec<VulnRow> {
    use Permission::*;
    let mut rows = vec![
        helper(
            "clipboard",
            "addPrimaryClipChangedListener",
            None,
            "ClipboardManager",
            16,
        ),
        helper(
            "accessibility",
            "addClient",
            None,
            "AccessibilityManager",
            16,
        ),
        helper(
            "launcherapps",
            "addOnAppsChangedListener",
            Some(ManageUsers),
            "LauncherApps",
            16,
        ),
        helper("tv_input", "registerCallback", None, "TvInputManager", 16),
        helper(
            "ethernet",
            "addListener",
            Some(AccessNetworkState),
            "EthernetManager",
            16,
        ),
        // MAX_ACTIVE_LOCKS = 50 in WifiManager.java (Code-Snippet 1).
        helper("wifi", "acquireWifiLock", Some(WakeLock), "WifiManager", 50),
        helper(
            "wifi",
            "acquireMulticastLock",
            Some(WakeLock),
            "WifiManager",
            50,
        ),
        helper(
            "location",
            "addGpsMeasurementsListener",
            Some(AccessFineLocation),
            "LocationManager",
            16,
        ),
        helper(
            "location",
            "addGpsNavigationMessageListener",
            Some(AccessFineLocation),
            "LocationManager",
            16,
        ),
    ];
    // Table III, row 1: enqueueToast's per-package cap is bypassable by
    // claiming to be the "android" package (Code-Snippet 3). It is also the
    // paper's slowest exhaustion (≈1800 s, Figure 3).
    rows.push(VulnRow {
        service: "notification",
        method: "enqueueToast",
        permission: None,
        protection: Protection::PerProcessLimit {
            limit: 50,
            flaw: Some(Flaw::SystemPackageSpoof),
        },
        grefs_per_call: 1,
        target_secs: Some(1_800),
    });
    rows
}

/// Table III rows 2–4: correctly protected interfaces. They *would* retain
/// per call, but the server-side cap is sound, so `is_vulnerable()` is
/// false — the static detector still flags them risky, and dynamic
/// verification clears them, as in the paper.
fn sound_per_process_rows() -> Vec<VulnRow> {
    [
        ("display", "registerCallback", 1u32),
        ("input", "registerInputDevicesChangedListener", 1),
        ("input", "registerTabletModeChangedListener", 1),
    ]
    .into_iter()
    .map(|(service, method, limit)| VulnRow {
        service,
        method,
        permission: None,
        protection: Protection::PerProcessLimit { limit, flaw: None },
        grefs_per_call: 1,
        target_secs: Some(600),
    })
    .collect()
}

/// The 104 registered system services of the simulated 6.0.1 image.
/// The five `native: true` entries register through the C++
/// `ServiceManager::addService`.
const SERVICE_NAMES: [(&str, bool); 104] = [
    ("accessibility", false),
    ("account", false),
    ("activity", false),
    ("alarm", false),
    ("appops", false),
    ("appwidget", false),
    ("assetatlas", false),
    ("audio", false),
    ("backup", false),
    ("battery", false),
    ("batteryproperties", false),
    ("batterystats", false),
    ("bluetooth_manager", false),
    ("carrier_config", false),
    ("clipboard", false),
    ("commontime_management", false),
    ("connectivity", false),
    ("consumer_ir", false),
    ("content", false),
    ("country_detector", false),
    ("cpuinfo", false),
    ("dbinfo", false),
    ("device_policy", false),
    ("deviceidle", false),
    ("devicestoragemonitor", false),
    ("diskstats", false),
    ("display", false),
    ("dreams", false),
    ("dropbox", false),
    ("ethernet", false),
    ("fingerprint", false),
    ("gfxinfo", false),
    ("graphicsstats", false),
    ("hardware", false),
    ("imms", false),
    ("input", false),
    ("input_method", false),
    ("iphonesubinfo", false),
    ("isms", false),
    ("isub", false),
    ("jobscheduler", false),
    ("launcherapps", false),
    ("location", false),
    ("lock_settings", false),
    ("media.audio_flinger", true),
    ("media.audio_policy", true),
    ("media.camera", true),
    ("media.player", true),
    ("media_projection", false),
    ("media_router", false),
    ("media_session", false),
    ("meminfo", false),
    ("midi", false),
    ("mount", false),
    ("netpolicy", false),
    ("netstats", false),
    ("network_management", false),
    ("network_score", false),
    ("network_time_update_service", false),
    ("notification", false),
    ("oem_lock", false),
    ("package", false),
    ("permission", false),
    ("persistent_data_block", false),
    ("phone", false),
    ("pinner", false),
    ("power", false),
    ("print", false),
    ("processinfo", false),
    ("procstats", false),
    ("recovery", false),
    ("restrictions", false),
    ("rttmanager", false),
    ("samplingprofiler", false),
    ("scheduling_policy", false),
    ("search", false),
    ("sensorservice", true),
    ("serial", false),
    ("servicediscovery", false),
    ("simphonebook", false),
    ("sip", false),
    ("soundtrigger", false),
    ("statusbar", false),
    ("telecom", false),
    ("telephony.registry", false),
    ("textservices", false),
    ("trust", false),
    ("tv_input", false),
    ("uimode", false),
    ("updatelock", false),
    ("usagestats", false),
    ("usb", false),
    ("user", false),
    ("vibrator", false),
    ("voiceinteraction", false),
    ("wallpaper", false),
    ("webviewupdate", false),
    ("wifi", false),
    ("wifip2p", false),
    ("wifiscanner", false),
    ("window", false),
    ("media_focus", false),
    ("print_spooler_bridge", false),
    ("textclassification", false),
];

/// AIDL interface names for the services the paper names; the rest are
/// derived mechanically.
fn interface_for(service: &str) -> String {
    let named = [
        ("accessibility", "IAccessibilityManager"),
        ("activity", "IActivityManager"),
        ("appops", "IAppOpsService"),
        ("audio", "IAudioService"),
        ("bluetooth_manager", "IBluetoothManager"),
        ("clipboard", "IClipboard"),
        ("connectivity", "IConnectivityManager"),
        ("content", "IContentService"),
        ("country_detector", "ICountryDetector"),
        ("display", "IDisplayManager"),
        ("ethernet", "IEthernetManager"),
        ("fingerprint", "IFingerprintService"),
        ("input", "IInputManager"),
        ("input_method", "IInputMethodManager"),
        ("launcherapps", "ILauncherApps"),
        ("location", "ILocationManager"),
        ("media_projection", "IMediaProjectionManager"),
        ("media_router", "IMediaRouterService"),
        ("media_session", "ISessionManager"),
        ("midi", "IMidiManager"),
        ("mount", "IMountService"),
        ("network_management", "INetworkManagementService"),
        ("notification", "INotificationManager"),
        ("package", "IPackageManager"),
        ("power", "IPowerManager"),
        ("print", "IPrintManager"),
        ("sip", "ISipService"),
        ("telephony.registry", "ITelephonyRegistry"),
        ("textservices", "ITextServicesManager"),
        ("tv_input", "ITvInputManager"),
        ("wallpaper", "IWallpaperManager"),
        ("wifi", "IWifiManager"),
        ("window", "IWindowManager"),
    ];
    if let Some((_, iface)) = named.iter().find(|(n, _)| *n == service) {
        return (*iface).to_owned();
    }
    // Mechanical: "network_score" -> "INetworkScore".
    let mut out = String::from("I");
    for part in service.split(['_', '.']) {
        let mut chars = part.chars();
        if let Some(first) = chars.next() {
            out.extend(first.to_uppercase());
            out.push_str(chars.as_str());
        }
    }
    out
}

/// Generated innocent-method name pool.
const INNOCENT_STEMS: [&str; 15] = [
    "getState",
    "setConfig",
    "queryInfo",
    "isEnabled",
    "notifyChange",
    "dump",
    "updatePolicy",
    "removeEntry",
    "listEntries",
    "checkAccess",
    "applySettings",
    "resetStats",
    "fetchStatus",
    "syncData",
    "describeContents",
];

fn innocent_methods(service: &str, count: usize) -> Vec<MethodSpec> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let stem = INNOCENT_STEMS[i % INNOCENT_STEMS.len()];
        let name = if i < INNOCENT_STEMS.len() {
            stem.to_owned()
        } else {
            format!("{stem}{}", i / INNOCENT_STEMS.len())
        };
        let h = fnv(&format!("{service}.{name}"));
        // Mostly no JGR at all; a sprinkle of the innocent JGR patterns the
        // sift rules must clear.
        let jgr = match h % 20 {
            0..=13 => JgrBehavior::NoJgr,
            14..=16 => JgrBehavior::Transient,
            17..=18 => JgrBehavior::ReplaceSingle,
            _ => JgrBehavior::ThreadCreateOnly,
        };
        let permission = match h % 11 {
            0 => Some(Permission::Internet),
            1 => Some(Permission::Vibrate),
            _ => None,
        };
        out.push(MethodSpec {
            name,
            permission,
            protection: Protection::None,
            jgr,
            cost: CostParams::innocent(100 + h % 700),
        });
    }
    out
}

fn build_catalog() -> AospSpec {
    // 1. Collect the vulnerable rows and assign exhaustion targets.
    let mut rows: Vec<VulnRow> = Vec::new();
    rows.extend(table1_rows());
    rows.extend(table2_and_3_rows());
    let risky_sound = sound_per_process_rows();

    // Log-space unpinned targets across (100, 1800) exclusive, ordered by a
    // stable hash so the spread looks organic in Figure 3.
    let mut unpinned: Vec<usize> = rows
        .iter()
        .enumerate()
        .filter(|(_, r)| r.target_secs.is_none())
        .map(|(i, _)| i)
        .collect();
    unpinned.sort_by_key(|&i| fnv(&format!("{}.{}", rows[i].service, rows[i].method)));
    let n = unpinned.len();
    for (rank, &idx) in unpinned.iter().enumerate() {
        let lo = 110.0_f64;
        let hi = 1_700.0_f64;
        let t = lo * (hi / lo).powf(rank as f64 / (n.max(2) - 1) as f64);
        rows[idx].target_secs = Some(t.round() as u64);
    }

    // 2. Materialise services.
    let mut services: Vec<ServiceSpec> = SERVICE_NAMES
        .iter()
        .map(|&(name, native)| {
            let h = fnv(name);
            let innocent_count = if native {
                6 + (h % 6) as usize
            } else {
                16 + (h % 16) as usize
            };
            ServiceSpec {
                name: name.to_owned(),
                interface: interface_for(name),
                native,
                methods: innocent_methods(name, innocent_count),
            }
        })
        .collect();

    let mut push_method = |service: &str, m: MethodSpec| {
        services
            .iter_mut()
            .find(|s| s.name == service)
            .unwrap_or_else(|| panic!("unknown service in vulnerability table: {service}"))
            .methods
            .push(m);
    };

    for row in rows.iter().chain(risky_sound.iter()) {
        let key = format!("{}.{}", row.service, row.method);
        let cost = vulnerable_cost(
            &key,
            row.target_secs.expect("targets assigned above"),
            row.grefs_per_call,
        );
        push_method(
            row.service,
            MethodSpec {
                name: row.method.to_owned(),
                permission: row.permission,
                protection: row.protection.clone(),
                jgr: JgrBehavior::RetainPerCall {
                    grefs_per_call: row.grefs_per_call,
                },
                cost,
            },
        );
    }

    // Retaining methods behind signature permissions: statically they look
    // exactly like the vulnerable ones, but the PScout-style permission
    // filter must remove them (third-party apps can never hold the
    // permission), so they are not among the 54.
    push_method(
        "device_policy",
        MethodSpec {
            name: "addPolicyStatusListener".to_owned(),
            permission: Some(Permission::WriteSecureSettings),
            protection: Protection::None,
            jgr: JgrBehavior::RetainPerCall { grefs_per_call: 1 },
            cost: vulnerable_cost("device_policy.addPolicyStatusListener", 600, 1),
        },
    );
    push_method(
        "batterystats",
        MethodSpec {
            name: "registerStatsListener".to_owned(),
            permission: Some(Permission::DevicePower),
            protection: Protection::None,
            jgr: JgrBehavior::RetainPerCall { grefs_per_call: 1 },
            cost: vulnerable_cost("batterystats.registerStatsListener", 600, 1),
        },
    );

    // 3. Prebuilt apps (Table IV + 86 innocuous ones).
    let prebuilt_apps = build_prebuilt_apps();

    // 4. Third-party apps (Table V + 997 innocuous ones).
    let third_party_apps = build_third_party_apps();

    AospSpec {
        services,
        prebuilt_apps,
        third_party_apps,
    }
}

fn exported_service(name: &str, interface: &str, method: &str, target_secs: u64) -> ServiceSpec {
    ServiceSpec {
        name: name.to_owned(),
        interface: interface.to_owned(),
        native: false,
        methods: vec![
            MethodSpec {
                name: method.to_owned(),
                permission: None,
                protection: Protection::None,
                jgr: JgrBehavior::RetainPerCall { grefs_per_call: 1 },
                cost: vulnerable_cost(&format!("{name}.{method}"), target_secs, 1),
            },
            MethodSpec {
                name: "getVersion".to_owned(),
                permission: None,
                protection: Protection::None,
                jgr: JgrBehavior::NoJgr,
                cost: CostParams::innocent(150),
            },
        ],
    }
}

fn build_prebuilt_apps() -> Vec<AppSpec> {
    let mut apps = vec![
        AppSpec {
            name: "Bluetooth".to_owned(),
            package: "com.android.bluetooth".to_owned(),
            code_path: "packages/apps/Bluetooth".to_owned(),
            services: vec![
                exported_service("bluetooth_gatt", "IBluetoothGatt", "registerServer", 450),
                exported_service("bluetooth_adapter", "IBluetooth", "registerCallback", 700),
            ],
        },
        AppSpec {
            name: "PicoTts".to_owned(),
            package: "com.svox.pico".to_owned(),
            code_path: "external/svox/pico".to_owned(),
            // PicoService inherits android.speech.tts.TextToSpeechService,
            // whose default setCallback() implementation leaks.
            services: vec![exported_service(
                "pico_tts",
                "ITextToSpeechService",
                "setCallback",
                550,
            )],
        },
    ];
    let real_names = [
        "Browser",
        "Calculator",
        "Calendar",
        "Camera2",
        "CaptivePortalLogin",
        "CellBroadcast",
        "CertInstaller",
        "Contacts",
        "DeskClock",
        "Dialer",
        "DocumentsUI",
        "DownloadProvider",
        "Email",
        "Exchange",
        "ExternalStorageProvider",
        "Gallery2",
        "HTMLViewer",
        "InputDevices",
        "KeyChain",
        "Launcher3",
        "ManagedProvisioning",
        "MediaProvider",
        "Messaging",
        "Music",
        "MusicFX",
        "Nfc",
        "PackageInstaller",
        "PhoneCommon",
        "PrintSpooler",
        "QuickSearchBox",
        "Settings",
        "SettingsProvider",
        "Shell",
        "SoundRecorder",
        "Stk",
        "SystemUI",
        "TeleService",
        "TelephonyProvider",
        "UserDictionaryProvider",
        "VpnDialogs",
        "WallpaperCropper",
        "WebViewGoogle",
        "BasicDreams",
        "BackupRestoreConfirmation",
        "BlockedNumberProvider",
        "BookmarkProvider",
        "CalendarProvider",
        "CallLogBackup",
        "CarrierConfig",
        "CompanionLink",
        "ContactsProvider",
        "DefaultContainerService",
        "DeviceInfo",
        "DocumentsProvider",
        "DownloadProviderUi",
        "EasterEgg",
        "EmergencyInfo",
        "FusedLocation",
        "HoloSpiralWallpaper",
        "InCallUI",
        "InputMethodLatin",
        "LiveWallpapersPicker",
        "MmsService",
        "MtpDocumentsProvider",
        "NfcNci",
        "OneTimeInitializer",
        "PacProcessor",
        "PhaseBeam",
        "PhotoTable",
        "ProxyHandler",
        "SecureElement",
        "SharedStorageBackup",
        "SimAppDialog",
        "StorageManager",
        "Tag",
        "Telecom",
        "TtsService",
        "TvSettings",
        "VoiceDialer",
        "WallpaperBackup",
        "WallpaperPicker",
        "WapPushManager",
        "BuiltInPrintService",
        "Bips",
        "Traceur",
        "Provision",
    ];
    for name in real_names {
        apps.push(AppSpec {
            name: name.to_owned(),
            package: format!("com.android.{}", name.to_lowercase()),
            code_path: format!("packages/apps/{name}"),
            services: Vec::new(),
        });
    }
    assert_eq!(apps.len(), 88, "the paper analyses 88 prebuilt apps");
    apps
}

fn build_third_party_apps() -> Vec<ThirdPartyAppSpec> {
    let mut apps = vec![
        ThirdPartyAppSpec {
            name: "Google Text-to-speech".to_owned(),
            package: "com.google.android.tts".to_owned(),
            downloads: "1e9-5e9".to_owned(),
            vulnerable_interface: Some((
                "ITextToSpeechService".to_owned(),
                "setCallback".to_owned(),
            )),
        },
        ThirdPartyAppSpec {
            name: "Supernet VPN".to_owned(),
            package: "com.supernet.vpn".to_owned(),
            downloads: "1e6-5e6".to_owned(),
            vulnerable_interface: Some((
                "IOpenVPNAPIService".to_owned(),
                "registerStatusCallback".to_owned(),
            )),
        },
        ThirdPartyAppSpec {
            name: "SnapMovie".to_owned(),
            package: "com.snapmovie.app".to_owned(),
            downloads: "1e6-5e6".to_owned(),
            vulnerable_interface: Some(("IMainService".to_owned(), "a".to_owned())),
        },
    ];
    for i in 0..997u32 {
        apps.push(ThirdPartyAppSpec {
            name: format!("PlayApp{i:03}"),
            package: format!("com.play.app{i:03}"),
            downloads: match i % 4 {
                0 => "1e4-5e4".to_owned(),
                1 => "1e5-5e5".to_owned(),
                2 => "1e6-5e6".to_owned(),
                _ => "1e7-5e7".to_owned(),
            },
            vulnerable_interface: None,
        });
    }
    apps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_counts_match_the_paper() {
        let aosp = AospSpec::android_6_0_1();
        assert_eq!(aosp.services.len(), 104, "104 system services");
        assert_eq!(
            aosp.services.iter().filter(|s| s.native).count(),
            5,
            "5 native services"
        );
        assert_eq!(
            aosp.vulnerable_service_interfaces().count(),
            54,
            "54 vulnerable interfaces"
        );
        let vulnerable_services: BTreeSet<_> = aosp
            .vulnerable_service_interfaces()
            .map(|(s, _)| s.name.clone())
            .collect();
        assert_eq!(vulnerable_services.len(), 32, "32 vulnerable services");
        assert_eq!(
            aosp.zero_permission_vulnerable_services().len(),
            22,
            "22 services attackable with zero permissions"
        );
        assert_eq!(aosp.prebuilt_apps.len(), 88);
        assert_eq!(aosp.vulnerable_prebuilt_interfaces().count(), 3);
        assert_eq!(aosp.third_party_apps.len(), 1_000);
        assert_eq!(
            aosp.third_party_apps
                .iter()
                .filter(|a| a.vulnerable_interface.is_some())
                .count(),
            3
        );
        assert!(
            aosp.total_ipc_methods() > 1_900,
            "thousands of IPC methods, got {}",
            aosp.total_ipc_methods()
        );
    }

    #[test]
    fn protection_breakdown_matches_tables_2_and_3() {
        let aosp = AospSpec::android_6_0_1();
        let protected: Vec<_> = aosp
            .services
            .iter()
            .flat_map(|s| s.methods.iter().map(move |m| (s, m)))
            .filter(|(_, m)| m.protection.exists())
            .collect();
        assert_eq!(protected.len(), 13, "13 interfaces have been protected");
        let still_vulnerable = protected.iter().filter(|(_, m)| m.is_vulnerable()).count();
        assert_eq!(still_vulnerable, 10, "10 protected interfaces still fall");
        let helper_protected = protected
            .iter()
            .filter(|(_, m)| matches!(m.protection, Protection::HelperThreshold { .. }))
            .count();
        assert_eq!(helper_protected, 9, "Table II lists 9 helper-protected");
    }

    #[test]
    fn unprotected_permission_split_matches_section_4b() {
        use std::collections::BTreeMap;
        let aosp = AospSpec::android_6_0_1();
        // Classify the 26 services of Table I by their *least-privileged*
        // unprotected vulnerable interface.
        let mut per_service: BTreeMap<&str, Vec<&MethodSpec>> = BTreeMap::new();
        for (s, m) in aosp.vulnerable_service_interfaces() {
            if matches!(m.protection, Protection::None) {
                per_service.entry(s.name.as_str()).or_default().push(m);
            }
        }
        assert_eq!(per_service.len(), 26, "26 unprotected vulnerable services");
        let mut zero = 0;
        let mut normal = 0;
        let mut dangerous = 0;
        for methods in per_service.values() {
            let min_level = methods
                .iter()
                .map(|m| match m.permission {
                    None => 0,
                    Some(p) if p.level() == ProtectionLevel::Normal => 1,
                    Some(_) => 2,
                })
                .min()
                .unwrap();
            match min_level {
                0 => zero += 1,
                1 => normal += 1,
                _ => dangerous += 1,
            }
        }
        assert_eq!((zero, normal, dangerous), (19, 4, 3));
    }

    #[test]
    fn exhaustion_targets_span_the_figure_3_range() {
        let aosp = AospSpec::android_6_0_1();
        let mut times: Vec<u64> = aosp
            .vulnerable_service_interfaces()
            .map(|(_, m)| {
                let JgrBehavior::RetainPerCall { grefs_per_call: g } = m.jgr else {
                    unreachable!()
                };
                m.cost.expected_exhaustion_us(JGR_CAP, g) / 1_000_000
            })
            .collect();
        times.sort_unstable();
        // Fastest ≈100 s, slowest ≈1800 s, everything in between.
        assert!((95..=105).contains(&times[0]), "fastest {}", times[0]);
        assert!(
            (1_700..=1_900).contains(times.last().unwrap()),
            "slowest {}",
            times.last().unwrap()
        );
        let audio = aosp
            .service("audio")
            .unwrap()
            .method("startWatchingRoutes")
            .unwrap();
        let toast = aosp
            .service("notification")
            .unwrap()
            .method("enqueueToast")
            .unwrap();
        assert!(
            audio.cost.expected_exhaustion_us(JGR_CAP, 1)
                < toast.cost.expected_exhaustion_us(JGR_CAP, 1)
        );
    }

    #[test]
    fn base_costs_stay_inside_figure_6_envelope() {
        let aosp = AospSpec::android_6_0_1();
        for (s, m) in aosp.vulnerable_service_interfaces() {
            // First 1000 calls stay under ~8 ms (Figure 6's x-axis).
            let early = m.cost.expected_us(1_000) + m.cost.jitter_us;
            assert!(
                early < 10_500,
                "{}.{} early cost {}µs breaks the Fig 6 envelope",
                s.name,
                m.name,
                early
            );
        }
    }

    #[test]
    fn named_flaws_and_helpers_present() {
        let aosp = AospSpec::android_6_0_1();
        let toast = aosp
            .service("notification")
            .unwrap()
            .method("enqueueToast")
            .unwrap();
        assert!(matches!(
            toast.protection,
            Protection::PerProcessLimit {
                flaw: Some(Flaw::SystemPackageSpoof),
                ..
            }
        ));
        assert!(toast.is_vulnerable());
        let wifi_lock = aosp
            .service("wifi")
            .unwrap()
            .method("acquireWifiLock")
            .unwrap();
        match &wifi_lock.protection {
            Protection::HelperThreshold {
                helper_class,
                limit,
            } => {
                assert_eq!(helper_class, "WifiManager");
                assert_eq!(*limit, 50, "MAX_ACTIVE_LOCKS");
            }
            other => panic!("unexpected protection {other:?}"),
        }
        let display = aosp
            .service("display")
            .unwrap()
            .method("registerCallback")
            .unwrap();
        assert!(!display.is_vulnerable(), "sound per-process cap holds");
        assert!(
            display.jgr.retains_unbounded(),
            "but it is risky statically"
        );
    }

    #[test]
    fn interfaces_are_distinct_and_nonempty() {
        let aosp = AospSpec::android_6_0_1();
        for s in &aosp.services {
            assert!(s.interface.starts_with('I'), "{}", s.interface);
            assert!(!s.methods.is_empty());
            let mut names: Vec<_> = s.methods.iter().map(|m| m.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate method in {}", s.name);
        }
    }

    #[test]
    fn spec_is_deterministic() {
        let a = AospSpec::android_6_0_1();
        let b = AospSpec::android_6_0_1();
        assert_eq!(a, b);
    }
}
