//! Per-method body synthesis: the structured statement AST the dataflow
//! analysis consumes.
//!
//! The [`model`](crate::model) records *facts* about each method — call
//! edges, Handler posts, and how every binder-typed parameter is used.
//! This module expands those facts, on demand, into a small structured
//! body per method ([`MethodBody`]): JGR allocations, releases, field
//! stores, local stores, calls, bound-check branches, and returns. Bodies
//! are derived (never stored), so they are consistent with the fact base
//! by construction and the serialized model is unchanged.
//!
//! The encoding mirrors what the real AOSP bodies do to JNI global
//! references:
//!
//! * Every binder-typed parameter arrives through `Parcel.readStrongBinder`,
//!   which creates a JGR — an [`BodyStmt::AllocJgr`] with an
//!   [`AllocSite::BinderParam`] site at method entry.
//! * `Thread.nativeCreate` pins the thread peer but the native side drops
//!   it when the thread exits: alloc followed by release on every path
//!   (the paper's sift rule 1 falls out of the dataflow).
//! * `Binder.linkToDeathNative` builds a `JavaDeathRecipient` that stays
//!   pinned until `unlinkToDeath` — an alloc that escapes into an
//!   unbounded native-side collection.
//! * Parameters used only locally or as read-only map keys are revoked by
//!   GC after the call — explicit releases before the return (rules 2–3).
//! * A parameter assigned to a scalar member field replaces the previous
//!   value: the old reference is released before the store (rule 4).
//! * A visible per-process bound check becomes a real branch
//!   ([`BodyStmt::If`]): the reference is stored on the under-limit path
//!   and dropped on the over-limit path. The downstream registration
//!   calls run on the under-limit path only — the limit bounds the whole
//!   registration, not just the local store.
//! * Branches carry a [`BranchKind`] label describing *what* the guarding
//!   condition tests (bound, permission, null, error). The analysis lowers
//!   these labels onto CFG edges as per-branch predicates, which is what
//!   lets a check clear or cap individual sites instead of muting the
//!   whole method.
//! * Three error-path shapes model conditional releases: an argument
//!   validation that early-returns *before* the release runs
//!   ([`ParamUsage::ReleaseSkippedOnError`]), a release that only happens
//!   once a permission check passes ([`ParamUsage::PermissionGatedRelease`]),
//!   and an unbounded store gated behind a null check
//!   ([`ParamUsage::NullCheckGatedStore`]).

use serde::{Deserialize, Serialize};

use crate::model::{CodeModel, MethodDef, MethodId, ParamUsage};

/// Virtual register holding a JGR inside one method body.
pub type Var = u32;

/// Where a JGR allocation originates (the paper's §III-B entry points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AllocSite {
    /// Parcel unmarshalling of the binder-typed argument at this index
    /// (the `readStrongBinder` special case of §III-C.2).
    BinderParam(usize),
    /// The `JavaDeathRecipient` pinned by `linkToDeathNative`.
    DeathRecipient,
    /// The thread peer pinned by `Thread::CreateNativeThread`.
    ThreadPeer,
    /// A direct `Parcel` strong-binder JNI wrapper call.
    ParcelStrongBinder,
}

/// What kind of member storage a reference is stored into.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FieldKind {
    /// A member collection (listener list). `bounded` is true when the
    /// store is guarded by a visible per-process bound check.
    Collection {
        /// Whether a per-process bound check guards the insertion.
        bounded: bool,
    },
    /// A read-only Map/Set key lookup — the reference is not retained.
    MapKeyReadOnly,
    /// A scalar member field — the store replaces the previous value.
    Scalar,
}

/// What the condition of a [`BodyStmt::If`] tests.
///
/// The label rides through CFG lowering onto the branch edges, where the
/// leak analysis turns it into per-branch predicates: the *then* edge of a
/// bound check proves the store is capped, the *else* edge of a permission
/// or error check is an error path that may skip a release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// A visible per-process bound check; the *then* branch is under-limit.
    BoundCheck,
    /// A permission check; the *else* branch is the caller-denied error path.
    PermissionCheck,
    /// A null check; the *then* branch has a non-null argument.
    NullCheck,
    /// An argument-validation / error check; the *else* branch is the
    /// early-return error path.
    ErrorCheck,
}

/// Operand of a release: a register or the current value of a field.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Place {
    /// A virtual register.
    Var(Var),
    /// The reference currently stored in a named member field.
    Field(String),
}

/// One statement of the structured body AST.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BodyStmt {
    /// A JGR is created and bound to `dst`.
    AllocJgr {
        /// Register receiving the new reference.
        dst: Var,
        /// Provenance of the allocation.
        site: AllocSite,
    },
    /// The reference held by `src` is deleted (or revoked by GC).
    ReleaseJgr {
        /// What is released.
        src: Place,
    },
    /// `src` is stored into a member field.
    StoreField {
        /// Register being stored.
        src: Var,
        /// Field name (for witness rendering).
        field: String,
        /// Storage kind — decides whether the store retains.
        kind: FieldKind,
    },
    /// `src` is stored into a local — no escape.
    StoreLocal {
        /// Register being stored.
        src: Var,
    },
    /// A call to another Java method (direct or via a Handler post).
    Call {
        /// Callee.
        callee: MethodId,
        /// Whether the edge is a `Message`/`Handler` post.
        via_handler: bool,
    },
    /// A two-way branch (bound / permission / null / error checks).
    If {
        /// What the condition tests — lowered onto the CFG branch edges.
        kind: BranchKind,
        /// Statements on the check-passed path.
        then_branch: Vec<BodyStmt>,
        /// Statements on the check-failed path.
        else_branch: Vec<BodyStmt>,
    },
    /// Method exit.
    Return,
}

/// A synthesized method body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MethodBody {
    /// Top-level statement sequence, ending in [`BodyStmt::Return`].
    pub stmts: Vec<BodyStmt>,
}

impl CodeModel {
    /// Synthesizes the structured body of a method from its recorded
    /// facts (binder-parameter usage, call edges, Handler posts).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids are only minted by this model).
    ///
    /// # Example
    ///
    /// ```
    /// use jgre_corpus::{spec::AospSpec, CodeModel};
    ///
    /// let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
    /// let link = model.find_method("android.os.Binder", "linkToDeathNative").unwrap();
    /// let body = model.method_body(link);
    /// assert!(!body.stmts.is_empty());
    /// ```
    pub fn method_body(&self, id: MethodId) -> MethodBody {
        synthesize_body(self.method(id))
    }
}

/// Synthesizes the body of one method definition. Exposed separately so
/// analyses can derive bodies for methods not yet inserted into a model.
pub fn synthesize_body(def: &MethodDef) -> MethodBody {
    if let Some(body) = jni_wrapper_body(def) {
        return body;
    }
    let mut stmts = Vec::new();
    // Every binder-typed argument is unmarshalled through
    // `Parcel.readStrongBinder` before the body runs.
    for i in 0..def.binder_params.len() {
        stmts.push(BodyStmt::AllocJgr {
            dst: i as Var,
            site: AllocSite::BinderParam(i),
        });
    }
    // Transient references (rules 2-3) are revoked by GC after the call;
    // the explicit releases are emitted just before the return.
    let mut transient: Vec<Var> = Vec::new();
    // Index (into `stmts`) of the first bound-check branch: when the
    // method admits callbacks under a per-process limit, the whole
    // registration path — including the downstream helper calls — runs
    // on the under-limit branch, as the real bound-checked services do.
    let mut bounded_branch: Option<usize> = None;
    for (i, usage) in def.binder_params.iter().enumerate() {
        let v = i as Var;
        match usage {
            ParamUsage::StoredInCollection => stmts.push(BodyStmt::StoreField {
                src: v,
                field: "mCallbacks".to_owned(),
                kind: FieldKind::Collection { bounded: false },
            }),
            ParamUsage::StoredInCollectionBounded => {
                bounded_branch.get_or_insert(stmts.len());
                stmts.push(BodyStmt::If {
                    kind: BranchKind::BoundCheck,
                    then_branch: vec![BodyStmt::StoreField {
                        src: v,
                        field: "mCallbacks".to_owned(),
                        kind: FieldKind::Collection { bounded: true },
                    }],
                    else_branch: vec![BodyStmt::ReleaseJgr { src: Place::Var(v) }],
                });
            }
            ParamUsage::LocalOnly => {
                stmts.push(BodyStmt::StoreLocal { src: v });
                transient.push(v);
            }
            ParamUsage::ReadOnlyMapKey => {
                stmts.push(BodyStmt::StoreField {
                    src: v,
                    field: "mClientMap".to_owned(),
                    kind: FieldKind::MapKeyReadOnly,
                });
                transient.push(v);
            }
            ParamUsage::AssignedToMemberField => {
                // Replacement: the previous field value is released before
                // the store, so the field never pins more than one JGR.
                stmts.push(BodyStmt::ReleaseJgr {
                    src: Place::Field("mListener".to_owned()),
                });
                stmts.push(BodyStmt::StoreField {
                    src: v,
                    field: "mListener".to_owned(),
                    kind: FieldKind::Scalar,
                });
            }
            ParamUsage::ReleaseSkippedOnError => {
                // Argument validation early-returns before the transient
                // release at the end of the body runs: the happy path is a
                // clean transient, the error path leaks the reference.
                stmts.push(BodyStmt::If {
                    kind: BranchKind::ErrorCheck,
                    then_branch: vec![],
                    else_branch: vec![BodyStmt::Return],
                });
                stmts.push(BodyStmt::StoreLocal { src: v });
                transient.push(v);
            }
            ParamUsage::PermissionGatedRelease => {
                // The release only runs once the permission check passes;
                // a caller *without* the permission — the attacker — takes
                // the else edge and the reference is never released.
                stmts.push(BodyStmt::If {
                    kind: BranchKind::PermissionCheck,
                    then_branch: vec![
                        BodyStmt::StoreLocal { src: v },
                        BodyStmt::ReleaseJgr { src: Place::Var(v) },
                    ],
                    else_branch: vec![BodyStmt::Return],
                });
            }
            ParamUsage::NullCheckGatedStore => {
                // The unbounded store is gated behind a null check. The
                // check clears nothing: an attacker passes a non-null
                // binder, so the retaining path is trivially reachable.
                stmts.push(BodyStmt::If {
                    kind: BranchKind::NullCheck,
                    then_branch: vec![BodyStmt::StoreField {
                        src: v,
                        field: "mObservers".to_owned(),
                        kind: FieldKind::Collection { bounded: false },
                    }],
                    else_branch: vec![BodyStmt::ReleaseJgr { src: Place::Var(v) }],
                });
            }
        }
    }
    let calls = def
        .calls
        .iter()
        .map(|callee| BodyStmt::Call {
            callee: *callee,
            via_handler: false,
        })
        .chain(def.handler_posts.iter().map(|callee| BodyStmt::Call {
            callee: *callee,
            via_handler: true,
        }));
    match bounded_branch {
        Some(i) => {
            let BodyStmt::If { then_branch, .. } = &mut stmts[i] else {
                unreachable!("bounded_branch indexes an If");
            };
            then_branch.extend(calls);
        }
        None => stmts.extend(calls),
    }
    for v in transient {
        stmts.push(BodyStmt::ReleaseJgr { src: Place::Var(v) });
    }
    stmts.push(BodyStmt::Return);
    MethodBody { stmts }
}

/// Hand-written bodies for the four Java JNI wrappers whose native
/// targets reach `IndirectReferenceTable::Add` (§III-B.2). Everything
/// else is synthesized generically from the fact base.
fn jni_wrapper_body(def: &MethodDef) -> Option<MethodBody> {
    let stmts = match (def.class.as_str(), def.name.as_str()) {
        // The parcel wrappers hand the fresh JGR to their caller: still
        // live at return, so the reference survives the call.
        ("android.os.Parcel", "nativeReadStrongBinder" | "nativeWriteStrongBinder") => vec![
            BodyStmt::AllocJgr {
                dst: 0,
                site: AllocSite::ParcelStrongBinder,
            },
            BodyStmt::Return,
        ],
        // linkToDeathNative pins a JavaDeathRecipient until unlinkToDeath
        // or the remote's death — an unbounded native-side retention.
        ("android.os.Binder", "linkToDeathNative") => vec![
            BodyStmt::AllocJgr {
                dst: 0,
                site: AllocSite::DeathRecipient,
            },
            BodyStmt::StoreField {
                src: 0,
                field: "gDeathRecipients".to_owned(),
                kind: FieldKind::Collection { bounded: false },
            },
            BodyStmt::Return,
        ],
        // Thread::CreateNativeThread releases the peer reference when the
        // thread exits — released on every path (sift rule 1).
        ("java.lang.Thread", "nativeCreate") => vec![
            BodyStmt::AllocJgr {
                dst: 0,
                site: AllocSite::ThreadPeer,
            },
            BodyStmt::ReleaseJgr { src: Place::Var(0) },
            BodyStmt::Return,
        ],
        _ => return None,
    };
    Some(MethodBody { stmts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AospSpec;

    fn model() -> CodeModel {
        CodeModel::synthesize(&AospSpec::android_6_0_1())
    }

    #[test]
    fn thread_create_releases_on_all_paths() {
        let m = model();
        let id = m.find_method("java.lang.Thread", "nativeCreate").unwrap();
        let body = m.method_body(id);
        assert!(matches!(
            body.stmts[0],
            BodyStmt::AllocJgr {
                site: AllocSite::ThreadPeer,
                ..
            }
        ));
        assert!(matches!(body.stmts[1], BodyStmt::ReleaseJgr { .. }));
    }

    #[test]
    fn link_to_death_retains_into_a_collection() {
        let m = model();
        let id = m
            .find_method("android.os.Binder", "linkToDeathNative")
            .unwrap();
        let body = m.method_body(id);
        assert!(body.stmts.iter().any(|s| matches!(
            s,
            BodyStmt::StoreField {
                kind: FieldKind::Collection { bounded: false },
                ..
            }
        )));
        assert!(!body
            .stmts
            .iter()
            .any(|s| matches!(s, BodyStmt::ReleaseJgr { .. })));
    }

    #[test]
    fn binder_params_alloc_at_entry_and_bodies_end_in_return() {
        let m = model();
        for def in &m.methods {
            let body = synthesize_body(def);
            assert!(
                matches!(body.stmts.last(), Some(BodyStmt::Return)),
                "{}",
                def.name
            );
            let allocs = body
                .stmts
                .iter()
                .filter(|s| {
                    matches!(
                        s,
                        BodyStmt::AllocJgr {
                            site: AllocSite::BinderParam(_),
                            ..
                        }
                    )
                })
                .count();
            assert_eq!(
                allocs,
                def.binder_params.len(),
                "{}.{}",
                def.class,
                def.name
            );
        }
    }

    #[test]
    fn bounded_collection_store_is_a_real_branch() {
        let m = model();
        let display = m
            .find_method("com.android.server.DisplayService", "registerCallback")
            .expect("display.registerCallback exists");
        let body = m.method_body(display);
        let branch = body
            .stmts
            .iter()
            .find_map(|s| match s {
                BodyStmt::If {
                    kind,
                    then_branch,
                    else_branch,
                } => Some((kind, then_branch, else_branch)),
                _ => None,
            })
            .expect("bounded store lowers to a branch");
        assert_eq!(*branch.0, BranchKind::BoundCheck);
        assert!(matches!(
            branch.1[0],
            BodyStmt::StoreField {
                kind: FieldKind::Collection { bounded: true },
                ..
            }
        ));
        assert!(matches!(branch.2[0], BodyStmt::ReleaseJgr { .. }));
    }

    fn shape_of(usage: ParamUsage) -> MethodBody {
        let def = MethodDef {
            id: MethodId(0),
            class: "com.example.Shape".to_owned(),
            name: "m".to_owned(),
            overrides_aidl: None,
            calls: Vec::new(),
            handler_posts: Vec::new(),
            registers_service: None,
            binder_params: vec![usage],
            permission_checks: Vec::new(),
        };
        synthesize_body(&def)
    }

    #[test]
    fn release_skipped_on_error_early_returns_before_the_release() {
        let body = shape_of(ParamUsage::ReleaseSkippedOnError);
        let BodyStmt::If {
            kind,
            then_branch,
            else_branch,
        } = &body.stmts[1]
        else {
            panic!("error check lowers to a branch, got {:?}", body.stmts[1]);
        };
        assert_eq!(*kind, BranchKind::ErrorCheck);
        assert!(then_branch.is_empty(), "happy path falls through");
        assert_eq!(else_branch.as_slice(), &[BodyStmt::Return]);
        // The transient release exists but sits *after* the early return.
        assert!(body.stmts[2..]
            .iter()
            .any(|s| matches!(s, BodyStmt::ReleaseJgr { .. })));
    }

    #[test]
    fn permission_gated_release_leaks_on_the_denied_path() {
        let body = shape_of(ParamUsage::PermissionGatedRelease);
        let BodyStmt::If {
            kind,
            then_branch,
            else_branch,
        } = &body.stmts[1]
        else {
            panic!("permission check lowers to a branch");
        };
        assert_eq!(*kind, BranchKind::PermissionCheck);
        assert!(then_branch
            .iter()
            .any(|s| matches!(s, BodyStmt::ReleaseJgr { .. })));
        assert_eq!(else_branch.as_slice(), &[BodyStmt::Return]);
    }

    #[test]
    fn null_check_gated_store_retains_on_the_non_null_path() {
        let body = shape_of(ParamUsage::NullCheckGatedStore);
        let BodyStmt::If {
            kind,
            then_branch,
            else_branch,
        } = &body.stmts[1]
        else {
            panic!("null check lowers to a branch");
        };
        assert_eq!(*kind, BranchKind::NullCheck);
        assert!(matches!(
            then_branch[0],
            BodyStmt::StoreField {
                kind: FieldKind::Collection { bounded: false },
                ..
            }
        ));
        assert!(matches!(else_branch[0], BodyStmt::ReleaseJgr { .. }));
    }

    #[test]
    fn handler_posts_become_handler_calls() {
        let m = model();
        let with_post = m
            .methods
            .iter()
            .find(|d| !d.handler_posts.is_empty())
            .expect("some method posts to a Handler");
        let body = synthesize_body(with_post);
        assert!(body.stmts.iter().any(|s| matches!(
            s,
            BodyStmt::Call {
                via_handler: true,
                ..
            }
        )));
    }
}
