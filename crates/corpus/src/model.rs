//! The synthesised code model: what SOOT + Doxygen would see.
//!
//! [`CodeModel::synthesize`] expands the declarative [`spec`](crate::spec)
//! into the structures the paper's pipeline consumes:
//!
//! * **Java classes and methods** with call edges (direct and
//!   Message-Handler-indirect, the latter needing the PScout-style pass),
//!   AIDL-override facts, `ServiceManager.addService` /
//!   `publishBinderService` registration sites, binder-typed parameter
//!   usage facts, and permission checks.
//! * **Native functions** with a call graph whose sink is
//!   `IndirectReferenceTable::Add`, including the 67 init-only paths
//!   (`WellKnownClasses::CacheClass` and friends) that the paper filters
//!   manually, and the native `ServiceManager::addService` sites of the 5
//!   native services.
//! * **JNI registrations** (`AndroidRuntime::registerNativeMethods` data)
//!   mapping Java methods to native entry points — how the paper lifts
//!   native JGR entries to Java JGR entries (§III-B.2).
//!
//! The analysis crate must recover every headline number by walking these
//! structures; the spec's `JgrBehavior` flags are *not* visible to it —
//! they are compiled away into call edges and parameter-usage facts here.
//!
//! [`CodeModel::method_body`] (in [`body`](crate::body)) expands those
//! facts further into a per-method statement AST — allocations, releases,
//! stores, calls, branches — which the dataflow leak analysis lowers to a
//! CFG. Bodies are derived on demand, so they stay consistent with the
//! fact base by construction.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::spec::{AospSpec, JgrBehavior, MethodSpec, Permission, Protection};

/// Index of a Java method in [`CodeModel::methods`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MethodId(pub u32);

/// Index of a native function in [`CodeModel::native_functions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NativeFunctionId(pub u32);

/// How a binder-typed parameter is used inside a method body — the fact
/// base of the paper's sift rules 2–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamUsage {
    /// Stored into a member collection (listener list) — retention.
    StoredInCollection,
    /// Stored into a member collection guarded by a visible per-process
    /// bound check (the Table III pattern). Static analysis still treats
    /// this as risky; dynamic verification decides.
    StoredInCollectionBounded,
    /// Used only inside the method body (sift rule 2).
    LocalOnly,
    /// Used only as a read-only key of a Map/Set/RemoteCallbackList
    /// (sift rule 3).
    ReadOnlyMapKey,
    /// Assigned to a single member field, replacing the previous value
    /// (sift rule 4).
    AssignedToMemberField,
    /// Used transiently, but an argument-validation check early-returns
    /// *before* the release runs — the error path leaks the reference
    /// (the "release skipped on error path" class, JGRE004).
    ReleaseSkippedOnError,
    /// The release only runs once a permission check passes; a caller
    /// without the permission takes the denied path and leaks (JGRE004).
    PermissionGatedRelease,
    /// Stored into an unbounded member collection behind a null check.
    /// The check clears nothing — a non-null binder reaches the store —
    /// but per-branch tracking records the predicate on the site.
    NullCheckGatedStore,
}

/// Where a class comes from, for per-app attribution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Origin {
    /// Part of the framework / system server.
    Framework,
    /// A prebuilt app, by package.
    PrebuiltApp(String),
    /// A Play-store app, by package.
    ThirdPartyApp(String),
}

/// One Java method.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MethodDef {
    /// Own id (equals the index in [`CodeModel::methods`]).
    pub id: MethodId,
    /// Fully qualified class name.
    pub class: String,
    /// Method name.
    pub name: String,
    /// The AIDL interface this method overrides, when it is a candidate
    /// IPC method.
    pub overrides_aidl: Option<String>,
    /// Direct call edges.
    pub calls: Vec<MethodId>,
    /// Indirect edges through a `Message`/`Handler` post — only visible to
    /// the PScout-style indirect-dependency pass.
    pub handler_posts: Vec<MethodId>,
    /// `(service_name, registered_class)` when this method calls
    /// `ServiceManager.addService` / `publishBinderService`.
    pub registers_service: Option<(String, String)>,
    /// Usage of each binder-typed parameter, in declaration order.
    pub binder_params: Vec<ParamUsage>,
    /// `enforceCallingPermission` checks in the body (PScout's map source).
    pub permission_checks: Vec<Permission>,
}

/// One Java class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassDef {
    /// Fully qualified name.
    pub name: String,
    /// Superclass, when not `java.lang.Object`.
    pub superclass: Option<String>,
    /// For abstract service base classes and app service classes: the
    /// AIDL interface returned by `asBinder()`.
    pub asbinder_interface: Option<String>,
    /// Methods declared in this class.
    pub methods: Vec<MethodId>,
    /// Attribution.
    pub origin: Origin,
}

/// One native (C++) function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NativeFunction {
    /// Own id (equals the index in [`CodeModel::native_functions`]).
    pub id: NativeFunctionId,
    /// Symbol, e.g. `"ibinderForJavaObject"`.
    pub name: String,
    /// Native call edges.
    pub calls: Vec<NativeFunctionId>,
    /// Whether this *is* `IndirectReferenceTable::Add` — the sink.
    pub is_irt_add: bool,
    /// A root only reachable during runtime initialisation (the 67
    /// filtered paths start here).
    pub init_only_root: bool,
    /// A registered JNI entry point (reachable from Java).
    pub is_jni_entry: bool,
    /// `Some(service_name)` when this function calls the native
    /// `ServiceManager::addService` (the 5 native services).
    pub registers_service: Option<String>,
    /// `Some((service, method))` for the IPC entry points of native
    /// services.
    pub native_ipc: Option<(String, String)>,
}

/// One `registerNativeMethods` row: Java method ↔ native function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JniRegistration {
    /// Java class, e.g. `"android.os.Parcel"`.
    pub java_class: String,
    /// Java method, e.g. `"nativeReadStrongBinder"`.
    pub java_method: String,
    /// Registered native entry.
    pub native: NativeFunctionId,
}

/// The whole synthesised codebase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeModel {
    /// All Java classes.
    pub classes: Vec<ClassDef>,
    /// All Java methods (indexed by [`MethodId`]).
    pub methods: Vec<MethodDef>,
    /// All native functions (indexed by [`NativeFunctionId`]).
    pub native_functions: Vec<NativeFunction>,
    /// All JNI registrations.
    pub jni_registrations: Vec<JniRegistration>,
}

impl CodeModel {
    /// Looks up a method definition.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids are only minted by this model).
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.methods[id.0 as usize]
    }

    /// Looks up a native function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn native(&self, id: NativeFunctionId) -> &NativeFunction {
        &self.native_functions[id.0 as usize]
    }

    /// Finds a method by class and name.
    pub fn find_method(&self, class: &str, name: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .find(|m| m.class == class && m.name == name)
            .map(|m| m.id)
    }

    /// Finds a class by name.
    pub fn find_class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Renders the call graph rooted at one method as Graphviz DOT —
    /// handy for eyeballing a finding's retention chain (`triage`
    /// workflows). Direct calls are solid edges; Handler posts are dashed.
    ///
    /// Returns `None` when the method does not exist.
    pub fn call_graph_dot(&self, class: &str, name: &str) -> Option<String> {
        use std::fmt::Write as _;
        let root = self.find_method(class, name)?;
        let mut out = String::from("digraph call_graph {\n  rankdir=LR;\n");
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let def = self.method(id);
            let _ = writeln!(out, "  m{} [label=\"{}.{}\"];", id.0, def.class, def.name);
            for callee in &def.calls {
                let _ = writeln!(out, "  m{} -> m{};", id.0, callee.0);
                stack.push(*callee);
            }
            for callee in &def.handler_posts {
                let _ = writeln!(out, "  m{} -> m{} [style=dashed];", id.0, callee.0);
                stack.push(*callee);
            }
        }
        out.push_str("}\n");
        Some(out)
    }

    /// Builds the code model from the ground-truth spec.
    ///
    /// # Example
    ///
    /// ```
    /// use jgre_corpus::{spec::AospSpec, CodeModel};
    ///
    /// let model = CodeModel::synthesize(&AospSpec::android_6_0_1());
    /// assert!(model.methods.len() > 2_000);
    /// assert!(model.find_method("android.os.Binder", "linkToDeath").is_some());
    /// ```
    pub fn synthesize(spec: &AospSpec) -> CodeModel {
        Builder::default().build(spec)
    }

    /// Builds the code model plus the error-path fixture: one extra app
    /// service class whose methods exercise the conditional-release shapes
    /// ([`ParamUsage::ReleaseSkippedOnError`],
    /// [`ParamUsage::PermissionGatedRelease`],
    /// [`ParamUsage::NullCheckGatedStore`]) alongside bounded and
    /// transient controls. The base corpus — and every headline count
    /// derived from it — is unchanged; the fixture only adds methods.
    ///
    /// # Example
    ///
    /// ```
    /// use jgre_corpus::{spec::AospSpec, CodeModel};
    ///
    /// let base = CodeModel::synthesize(&AospSpec::android_6_0_1());
    /// let ext = CodeModel::synthesize_with_error_paths(&AospSpec::android_6_0_1());
    /// assert_eq!(ext.methods.len(), base.methods.len() + 6);
    /// ```
    pub fn synthesize_with_error_paths(spec: &AospSpec) -> CodeModel {
        let mut model = Self::synthesize(spec);
        append_error_path_fixture(&mut model);
        model
    }
}

/// Class hosting the error-path fixture of
/// [`CodeModel::synthesize_with_error_paths`].
pub const ERROR_PATH_CLASS: &str = "com.example.errorpaths.LeakyService";

/// Ground truth for the error-path fixture: the `(class, method)` pairs
/// that must be reported as "release skipped on error path" (JGRE004).
/// The fixture's other methods are controls — a null-gated unbounded
/// store (a plain unbounded leak), a bounded registration (provably
/// capped), and a transient ping (sifted).
pub fn error_path_cases() -> [(&'static str, &'static str); 3] {
    [
        (ERROR_PATH_CLASS, "registerOnError"),
        (ERROR_PATH_CLASS, "gatedRelease"),
        (ERROR_PATH_CLASS, "watchSessions"),
    ]
}

fn append_error_path_fixture(model: &mut CodeModel) {
    let origin = Origin::ThirdPartyApp("com.example.errorpaths".to_owned());
    let iface = "IErrorPathDemo";
    let mut methods = Vec::new();
    let shapes: [(&str, Vec<ParamUsage>); 6] = [
        ("registerOnError", vec![ParamUsage::ReleaseSkippedOnError]),
        ("gatedRelease", vec![ParamUsage::PermissionGatedRelease]),
        (
            "watchSessions",
            vec![ParamUsage::ReleaseSkippedOnError, ParamUsage::LocalOnly],
        ),
        ("addNonNullObserver", vec![ParamUsage::NullCheckGatedStore]),
        (
            "boundedRegister",
            vec![ParamUsage::StoredInCollectionBounded],
        ),
        ("transientPing", vec![ParamUsage::LocalOnly]),
    ];
    for (name, binder_params) in shapes {
        let id = MethodId(model.methods.len() as u32);
        model.methods.push(MethodDef {
            id,
            class: ERROR_PATH_CLASS.to_owned(),
            name: name.to_owned(),
            overrides_aidl: Some(iface.to_owned()),
            calls: Vec::new(),
            handler_posts: Vec::new(),
            registers_service: None,
            binder_params,
            permission_checks: Vec::new(),
        });
        methods.push(id);
    }
    model.classes.push(ClassDef {
        name: ERROR_PATH_CLASS.to_owned(),
        superclass: None,
        asbinder_interface: Some(iface.to_owned()),
        methods,
        origin,
    });
}

// --------------------------------------------------------------------------
// Synthesis
// --------------------------------------------------------------------------

#[derive(Default)]
struct Builder {
    classes: Vec<ClassDef>,
    methods: Vec<MethodDef>,
    natives: Vec<NativeFunction>,
    jni: Vec<JniRegistration>,
    class_index: BTreeMap<String, usize>,
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Builder {
    fn class(&mut self, name: &str, origin: Origin) -> usize {
        if let Some(&idx) = self.class_index.get(name) {
            return idx;
        }
        let idx = self.classes.len();
        self.classes.push(ClassDef {
            name: name.to_owned(),
            superclass: None,
            asbinder_interface: None,
            methods: Vec::new(),
            origin,
        });
        self.class_index.insert(name.to_owned(), idx);
        idx
    }

    fn method(&mut self, class: &str, name: &str, origin: Origin) -> MethodId {
        let cidx = self.class(class, origin);
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(MethodDef {
            id,
            class: class.to_owned(),
            name: name.to_owned(),
            overrides_aidl: None,
            calls: Vec::new(),
            handler_posts: Vec::new(),
            registers_service: None,
            binder_params: Vec::new(),
            permission_checks: Vec::new(),
        });
        self.classes[cidx].methods.push(id);
        id
    }

    fn native(&mut self, name: &str) -> NativeFunctionId {
        let id = NativeFunctionId(self.natives.len() as u32);
        self.natives.push(NativeFunction {
            id,
            name: name.to_owned(),
            calls: Vec::new(),
            is_irt_add: false,
            init_only_root: false,
            is_jni_entry: false,
            registers_service: None,
            native_ipc: None,
        });
        id
    }

    fn native_edge(&mut self, from: NativeFunctionId, to: NativeFunctionId) {
        self.natives[from.0 as usize].calls.push(to);
    }

    fn call(&mut self, from: MethodId, to: MethodId) {
        self.methods[from.0 as usize].calls.push(to);
    }

    fn handler_post(&mut self, from: MethodId, to: MethodId) {
        self.methods[from.0 as usize].handler_posts.push(to);
    }

    fn register_jni(&mut self, java_class: &str, java_method: &str, native: NativeFunctionId) {
        self.natives[native.0 as usize].is_jni_entry = true;
        self.jni.push(JniRegistration {
            java_class: java_class.to_owned(),
            java_method: java_method.to_owned(),
            native,
        });
    }

    fn build(mut self, spec: &AospSpec) -> CodeModel {
        self.build_native_world();
        let jgr = self.build_framework_plumbing();
        self.build_services(spec, &jgr);
        self.build_apps(spec, &jgr);
        CodeModel {
            classes: self.classes,
            methods: self.methods,
            native_functions: self.natives,
            jni_registrations: self.jni,
        }
    }

    /// Builds the native call graph: exactly 80 exploitable simple paths
    /// from JNI entries to `IndirectReferenceTable::Add`, plus 67
    /// init-only paths, matching the paper's 147 total / 67 filtered.
    fn build_native_world(&mut self) {
        let irt_add = self.native("art::IndirectReferenceTable::Add");
        self.natives[irt_add.0 as usize].is_irt_add = true;

        // The four named JNI entries of the paper (4 paths).
        let ibinder_for_java = self.native("android::ibinderForJavaObject");
        self.native_edge(ibinder_for_java, irt_add);
        let read_strong = self.native("android_os_Parcel_readStrongBinder");
        self.native_edge(read_strong, ibinder_for_java);
        let write_strong = self.native("android_os_Parcel_writeStrongBinder");
        self.native_edge(write_strong, ibinder_for_java);
        let death_recipient = self.native("JavaDeathRecipient::JavaDeathRecipient");
        self.native_edge(death_recipient, irt_add);
        let link_to_death = self.native("android_os_BinderProxy_linkToDeath");
        self.native_edge(link_to_death, death_recipient);
        let create_native_thread = self.native("art::Thread::CreateNativeThread");
        self.native_edge(create_native_thread, irt_add);
        let thread_native_create = self.native("Thread_nativeCreate");
        self.native_edge(thread_native_create, create_native_thread);

        // Generated exploitable chains: 70 single-path roots and 3 roots
        // that branch into two paths each → 70 + 6 + 4 named = 80 paths.
        for i in 0..70u32 {
            let root = self.native(&format!("jni_entry_{i:02}"));
            let depth = 1 + (fnv(&format!("chain{i}")) % 3) as u32;
            let mut prev = root;
            for d in 0..depth {
                let mid = self.native(&format!("native_helper_{i:02}_{d}"));
                self.native_edge(prev, mid);
                prev = mid;
            }
            self.native_edge(prev, irt_add);
            self.register_jni(
                &format!("com.android.internal.Lib{:02}", i / 5),
                &format!("nativeOp{i:02}"),
                root,
            );
        }
        for i in 0..3u32 {
            let root = self.native(&format!("jni_branching_{i}"));
            for b in 0..2u32 {
                let mid = self.native(&format!("native_branch_{i}_{b}"));
                self.native_edge(root, mid);
                self.native_edge(mid, irt_add);
            }
            self.register_jni(
                "com.android.internal.BranchLib",
                &format!("nativeBranch{i}"),
                root,
            );
        }

        // Init-only world: 67 paths the paper filters out manually.
        // WellKnownClasses::CacheClass fans out 40 ways, Runtime::Init 20,
        // ClassLinker::InitFromImage 7.
        for (root_name, fanout) in [
            ("art::WellKnownClasses::CacheClass", 40u32),
            ("art::Runtime::Init", 20),
            ("art::ClassLinker::InitFromImage", 7),
        ] {
            let root = self.native(root_name);
            self.natives[root.0 as usize].init_only_root = true;
            for b in 0..fanout {
                let mid = self.native(&format!("{root_name}::step{b:02}"));
                self.native_edge(root, mid);
                self.native_edge(mid, irt_add);
            }
        }

        // JNI registrations for the named entries.
        self.register_jni("android.os.Parcel", "nativeReadStrongBinder", read_strong);
        self.register_jni("android.os.Parcel", "nativeWriteStrongBinder", write_strong);
        self.register_jni("android.os.Binder", "linkToDeathNative", link_to_death);
        self.register_jni("java.lang.Thread", "nativeCreate", thread_native_create);
    }

    /// Java framework plumbing every service call-chain goes through.
    fn build_framework_plumbing(&mut self) -> JavaJgrEntries {
        let fw = Origin::Framework;
        // Java wrappers over the JNI entries (their JNI registrations were
        // added in build_native_world; here we only create the MethodDefs).
        let read_strong = self.method("android.os.Parcel", "nativeReadStrongBinder", fw.clone());
        let write_strong = self.method("android.os.Parcel", "nativeWriteStrongBinder", fw.clone());
        let link_native = self.method("android.os.Binder", "linkToDeathNative", fw.clone());
        let link = self.method("android.os.Binder", "linkToDeath", fw.clone());
        self.call(link, link_native);
        let thread_native = self.method("java.lang.Thread", "nativeCreate", fw.clone());
        let thread_start = self.method("java.lang.Thread", "start", fw.clone());
        self.call(thread_start, thread_native);
        // RemoteCallbackList.register: the canonical retention path —
        // stores the callback and links a death recipient.
        let rcl_register = self.method("android.os.RemoteCallbackList", "register", fw.clone());
        self.call(rcl_register, link);
        let rcl_unregister = self.method("android.os.RemoteCallbackList", "unregister", fw);
        let _ = rcl_unregister;
        JavaJgrEntries {
            _read_strong: read_strong,
            _write_strong: write_strong,
            rcl_register,
            thread_start,
        }
    }

    fn build_services(&mut self, spec: &AospSpec, jgr: &JavaJgrEntries) {
        let fw = Origin::Framework;
        // A single SystemServer class hosts all registration call sites.
        for service in &spec.services {
            if service.native {
                // Native registration + native IPC entry points.
                let reg = self.native(&format!("{}::instantiate", service.interface));
                self.natives[reg.0 as usize].registers_service = Some(service.name.clone());
                for m in &service.methods {
                    let entry =
                        self.native(&format!("{}::onTransact_{}", service.interface, m.name));
                    self.natives[entry.0 as usize].native_ipc =
                        Some((service.name.clone(), m.name.clone()));
                }
                continue;
            }
            let class_name = service_class_name(&service.name);
            let reg = self.method(
                "com.android.server.SystemServer",
                &format!("start_{}", service.name.replace(['.', '-'], "_")),
                fw.clone(),
            );
            self.methods[reg.0 as usize].registers_service =
                Some((service.name.clone(), class_name.clone()));
            for m in &service.methods {
                self.add_ipc_method(&class_name, &service.interface, m, jgr, fw.clone());
            }
        }
    }

    /// One IPC method plus the body facts its `JgrBehavior` compiles to.
    fn add_ipc_method(
        &mut self,
        class_name: &str,
        interface: &str,
        m: &MethodSpec,
        jgr: &JavaJgrEntries,
        origin: Origin,
    ) {
        let id = self.method(class_name, &m.name, origin.clone());
        self.methods[id.0 as usize].overrides_aidl = Some(interface.to_owned());
        if let Some(p) = m.permission {
            self.methods[id.0 as usize].permission_checks.push(p);
        }
        let key = fnv(&format!("{class_name}.{}", m.name));
        match m.jgr {
            JgrBehavior::RetainPerCall { grefs_per_call } => {
                let usage =
                    if matches!(m.protection, Protection::PerProcessLimit { flaw: None, .. }) {
                        ParamUsage::StoredInCollectionBounded
                    } else {
                        ParamUsage::StoredInCollection
                    };
                for _ in 0..grefs_per_call.max(1) {
                    self.methods[id.0 as usize].binder_params.push(usage);
                }
                // Route through an internal helper; ~1/3 go via a Handler
                // post so the indirect-dependency pass is exercised.
                let helper = self.method(class_name, &format!("{}Internal", m.name), origin);
                if key.is_multiple_of(3) {
                    self.handler_post(id, helper);
                } else {
                    self.call(id, helper);
                }
                self.call(helper, jgr.rcl_register);
            }
            JgrBehavior::Transient => {
                let usage = if key.is_multiple_of(2) {
                    ParamUsage::LocalOnly
                } else {
                    ParamUsage::ReadOnlyMapKey
                };
                self.methods[id.0 as usize].binder_params.push(usage);
            }
            JgrBehavior::ReplaceSingle => {
                self.methods[id.0 as usize]
                    .binder_params
                    .push(ParamUsage::AssignedToMemberField);
            }
            JgrBehavior::ThreadCreateOnly => {
                self.call(id, jgr.thread_start);
            }
            JgrBehavior::NoJgr => {}
        }
    }

    fn build_apps(&mut self, spec: &AospSpec, jgr: &JavaJgrEntries) {
        // Abstract base class with default IPC implementations: the
        // TextToSpeechService pattern of §IV-D.
        let fw = Origin::Framework;
        let base = "android.speech.tts.TextToSpeechService";
        let base_idx = self.class(base, fw.clone());
        self.classes[base_idx].asbinder_interface = Some("ITextToSpeechService".to_owned());
        let set_callback = self.method(base, "setCallback", fw.clone());
        self.methods[set_callback.0 as usize].overrides_aidl =
            Some("ITextToSpeechService".to_owned());
        self.methods[set_callback.0 as usize]
            .binder_params
            .push(ParamUsage::StoredInCollection);
        let helper = self.method(base, "setCallbackInternal", fw.clone());
        self.call(set_callback, helper);
        self.call(helper, jgr.rcl_register);
        let speak = self.method(base, "speak", fw);
        self.methods[speak.0 as usize].overrides_aidl = Some("ITextToSpeechService".to_owned());
        self.methods[speak.0 as usize]
            .binder_params
            .push(ParamUsage::LocalOnly);

        for app in &spec.prebuilt_apps {
            let origin = Origin::PrebuiltApp(app.package.clone());
            if app.name == "PicoTts" {
                // PicoService only *extends* the base; the vulnerable
                // method is inherited.
                let cidx = self.class("com.svox.pico.PicoService", origin.clone());
                self.classes[cidx].superclass = Some(base.to_owned());
                continue;
            }
            for service in &app.services {
                let class_name = format!(
                    "{}.{}",
                    app.package,
                    service.interface.trim_start_matches('I')
                );
                let cidx = self.class(&class_name, origin.clone());
                self.classes[cidx].asbinder_interface = Some(service.interface.clone());
                for m in &service.methods {
                    self.add_ipc_method(&class_name, &service.interface, m, jgr, origin.clone());
                }
            }
            // Innocuous app classes, a couple per app, for scale.
            let h = fnv(&app.package);
            for i in 0..(1 + h % 3) {
                let class_name = format!("{}.Activity{i}", app.package);
                let act = self.method(&class_name, "onCreate", origin.clone());
                let _ = act;
            }
        }

        for app in &spec.third_party_apps {
            let origin = Origin::ThirdPartyApp(app.package.clone());
            match &app.vulnerable_interface {
                Some((iface, method)) if iface == "ITextToSpeechService" => {
                    // Google TTS: extends the framework base class.
                    let cidx = self.class(&format!("{}.TtsService", app.package), origin.clone());
                    self.classes[cidx].superclass = Some(base.to_owned());
                    debug_assert_eq!(method, "setCallback");
                }
                Some((iface, method)) => {
                    let class_name = format!("{}.MainService", app.package);
                    let cidx = self.class(&class_name, origin.clone());
                    self.classes[cidx].asbinder_interface = Some(iface.clone());
                    let id = self.method(&class_name, method, origin.clone());
                    self.methods[id.0 as usize].overrides_aidl = Some(iface.clone());
                    self.methods[id.0 as usize]
                        .binder_params
                        .push(ParamUsage::StoredInCollection);
                    self.call(id, jgr.rcl_register);
                }
                None => {
                    // Most apps export nothing; give them a main activity
                    // so the corpus has app-side bulk.
                    let class_name = format!("{}.MainActivity", app.package);
                    let _ = self.method(&class_name, "onCreate", origin.clone());
                }
            }
        }
    }
}

/// Canonical framework service class name, e.g. `"clipboard"` →
/// `"com.android.server.ClipboardService"`.
pub fn service_class_name(service: &str) -> String {
    let mut camel = String::new();
    for part in service.split(['_', '.']) {
        let mut chars = part.chars();
        if let Some(first) = chars.next() {
            camel.extend(first.to_uppercase());
            camel.push_str(chars.as_str());
        }
    }
    format!("com.android.server.{camel}Service")
}

struct JavaJgrEntries {
    _read_strong: MethodId,
    _write_strong: MethodId,
    rcl_register: MethodId,
    thread_start: MethodId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AospSpec;

    fn model() -> CodeModel {
        CodeModel::synthesize(&AospSpec::android_6_0_1())
    }

    #[test]
    fn scale_is_plausible() {
        let m = model();
        assert!(m.methods.len() > 2_000, "methods: {}", m.methods.len());
        assert!(m.classes.len() > 1_000, "classes: {}", m.classes.len());
        assert!(
            m.native_functions.len() > 200,
            "natives: {}",
            m.native_functions.len()
        );
    }

    #[test]
    fn named_jni_entries_registered() {
        let m = model();
        for (class, method) in [
            ("android.os.Parcel", "nativeReadStrongBinder"),
            ("android.os.Parcel", "nativeWriteStrongBinder"),
            ("android.os.Binder", "linkToDeathNative"),
            ("java.lang.Thread", "nativeCreate"),
        ] {
            assert!(
                m.jni_registrations
                    .iter()
                    .any(|r| r.java_class == class && r.java_method == method),
                "missing JNI registration {class}.{method}"
            );
        }
    }

    #[test]
    fn registration_sites_cover_all_java_services() {
        let m = model();
        let spec = AospSpec::android_6_0_1();
        let registered: std::collections::BTreeSet<_> = m
            .methods
            .iter()
            .filter_map(|mm| mm.registers_service.as_ref())
            .map(|(name, _)| name.clone())
            .collect();
        let native_registered: std::collections::BTreeSet<_> = m
            .native_functions
            .iter()
            .filter_map(|n| n.registers_service.clone())
            .collect();
        for s in &spec.services {
            if s.native {
                assert!(native_registered.contains(&s.name), "{} missing", s.name);
            } else {
                assert!(registered.contains(&s.name), "{} missing", s.name);
            }
        }
        assert_eq!(native_registered.len(), 5);
    }

    #[test]
    fn vulnerable_method_reaches_jgr_entry_via_calls() {
        let m = model();
        let clip = m
            .find_method(
                &service_class_name("clipboard"),
                "addPrimaryClipChangedListener",
            )
            .expect("clipboard IPC method");
        // Walk direct + handler edges to a fixpoint; must reach
        // RemoteCallbackList.register -> Binder.linkToDeath.
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![clip];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let def = m.method(id);
            stack.extend(def.calls.iter().copied());
            stack.extend(def.handler_posts.iter().copied());
        }
        let link = m.find_method("android.os.Binder", "linkToDeath").unwrap();
        assert!(
            seen.contains(&link),
            "retention chain must reach linkToDeath"
        );
    }

    #[test]
    fn pico_service_inherits_the_vulnerable_base() {
        let m = model();
        let pico = m.find_class("com.svox.pico.PicoService").unwrap();
        assert_eq!(
            pico.superclass.as_deref(),
            Some("android.speech.tts.TextToSpeechService")
        );
        let base = m
            .find_class("android.speech.tts.TextToSpeechService")
            .unwrap();
        assert_eq!(
            base.asbinder_interface.as_deref(),
            Some("ITextToSpeechService")
        );
    }

    #[test]
    fn dot_export_contains_the_retention_chain() {
        let m = model();
        let dot = m
            .call_graph_dot(
                &service_class_name("clipboard"),
                "addPrimaryClipChangedListener",
            )
            .expect("clipboard IPC method exists");
        assert!(dot.starts_with("digraph call_graph {"));
        assert!(dot.contains("android.os.Binder.linkToDeath"), "{dot}");
        assert!(dot.contains("android.os.RemoteCallbackList.register"));
        assert!(m.call_graph_dot("no.Such", "method").is_none());
        // Handler-indirect chains render dashed edges.
        let spec = AospSpec::android_6_0_1();
        let dashed = spec.vulnerable_service_interfaces().find_map(|(s, mm)| {
            let dot = m.call_graph_dot(&service_class_name(&s.name), &mm.name)?;
            dot.contains("style=dashed").then_some(dot)
        });
        assert!(
            dashed.is_some(),
            "at least one vulnerable chain is Handler-routed"
        );
    }

    #[test]
    fn model_is_deterministic() {
        assert_eq!(model(), model());
    }

    #[test]
    fn error_path_fixture_extends_without_disturbing_the_base() {
        let base = model();
        let ext = CodeModel::synthesize_with_error_paths(&AospSpec::android_6_0_1());
        assert_eq!(ext.methods.len(), base.methods.len() + 6);
        assert_eq!(ext.methods[..base.methods.len()], base.methods[..]);
        let class = ext.find_class(ERROR_PATH_CLASS).expect("fixture class");
        assert_eq!(class.asbinder_interface.as_deref(), Some("IErrorPathDemo"));
        for (class_name, method) in error_path_cases() {
            assert!(
                ext.find_method(class_name, method).is_some(),
                "missing {class_name}.{method}"
            );
        }
    }
}
