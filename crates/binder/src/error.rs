//! Error type for Binder operations.

use std::error::Error;
use std::fmt;

/// Errors returned by the simulated Binder layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BinderError {
    /// The target node does not exist.
    UnknownNode,
    /// The target node's hosting process has died
    /// (`DeadObjectException` territory).
    DeadNode,
    /// A service name was registered twice with the service manager.
    ServiceNameTaken(String),
    /// Reading past the end of a parcel.
    ParcelUnderflow,
    /// The next parcel value had a different type than requested.
    ParcelTypeMismatch {
        /// Type the reader asked for.
        expected: &'static str,
        /// Type actually present.
        found: &'static str,
    },
    /// A death link to remove was not found.
    UnknownDeathLink,
    /// The parcel exceeds the Binder transaction buffer
    /// (`TransactionTooLargeException`; the buffer is 1 MB per process on
    /// Android).
    TransactionTooLarge {
        /// Payload size that was attempted.
        size: usize,
        /// The buffer limit.
        limit: usize,
    },
}

impl fmt::Display for BinderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinderError::UnknownNode => write!(f, "unknown binder node"),
            BinderError::DeadNode => write!(f, "binder node's hosting process has died"),
            BinderError::ServiceNameTaken(name) => {
                write!(f, "service name already registered: {name}")
            }
            BinderError::ParcelUnderflow => write!(f, "read past end of parcel"),
            BinderError::ParcelTypeMismatch { expected, found } => {
                write!(
                    f,
                    "parcel type mismatch: expected {expected}, found {found}"
                )
            }
            BinderError::UnknownDeathLink => write!(f, "death link not found"),
            BinderError::TransactionTooLarge { size, limit } => {
                write!(f, "transaction too large: {size} bytes (limit {limit})")
            }
        }
    }
}

impl Error for BinderError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(BinderError::UnknownNode.to_string(), "unknown binder node");
        assert!(BinderError::ServiceNameTaken("wifi".into())
            .to_string()
            .contains("wifi"));
        let e = BinderError::ParcelTypeMismatch {
            expected: "string",
            found: "i32",
        };
        assert!(e.to_string().contains("expected string"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: Send + Sync + Error>() {}
        assert_traits::<BinderError>();
    }
}
