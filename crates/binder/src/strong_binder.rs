//! Materialising received strong binders into proxy objects + JGRs.
//!
//! In Android, `Parcel.readStrongBinder()` on the receiving side goes
//! through `android_os_Parcel_readStrongBinder` →
//! `javaObjectForIBinder`, which allocates a `BinderProxy` and pins its
//! native peer with a **JNI global reference**; the reference is only
//! released when the proxy is garbage-collected (its finalizer calls
//! `BinderProxy.destroy`). The paper records
//! `Parcel.nativeReadStrongBinder()` as a Java JGR entry for exactly this
//! reason (§III-B, Figure 2).
//!
//! [`materialize_strong_binder`] reproduces that contract against the
//! simulated runtime: allocate a proxy, add a global reference, and attach
//! a finalizer that deletes the reference when the proxy dies. Whether the
//! reference *leaks* is then decided by the service handler: retaining the
//! proxy (a listener list) pins it; dropping it lets the next GC release
//! everything — which is precisely the distinction the paper's sift rules
//! draw.

use jgre_art::{ArtError, Finalizer, IndirectRef, ObjRef, Runtime};

use crate::NodeId;

/// A proxy materialised in a receiving process for an incoming binder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceivedBinder {
    /// The remote node this proxy speaks to.
    pub node: NodeId,
    /// The `BinderProxy` heap object in the receiving runtime.
    pub proxy: ObjRef,
    /// The global reference pinning the proxy's native peer.
    pub gref: IndirectRef,
}

/// Unmarshals one strong binder into `runtime`, creating the proxy object
/// and its JNI global reference.
///
/// The returned proxy is **unpinned**: if the service handler does not
/// [`retain`](Runtime::retain) it, the next garbage collection frees it and
/// the attached finalizer deletes the global reference — the "innocent"
/// pattern. Retaining it reproduces the leak.
///
/// # Errors
///
/// Propagates [`ArtError::TableOverflow`] when this add is the one that
/// blows the 51200 cap (the receiving runtime aborts, the JGRE event), or
/// [`ArtError::RuntimeAborted`] when the runtime is already dead.
///
/// # Example
///
/// ```
/// use jgre_art::Runtime;
/// use jgre_binder::{materialize_strong_binder, NodeId};
/// use jgre_sim::{Pid, SimClock, TraceSink};
///
/// let mut rt = Runtime::new(Pid::new(412), SimClock::new(), TraceSink::disabled());
/// let received = materialize_strong_binder(&mut rt, NodeId::new(8))?;
/// assert_eq!(rt.global_count(), 1);
/// // Nothing retains the proxy, so GC releases the reference:
/// rt.collect_garbage();
/// assert_eq!(rt.global_count(), 0);
/// # Ok::<(), jgre_art::ArtError>(())
/// ```
pub fn materialize_strong_binder(
    runtime: &mut Runtime,
    node: NodeId,
) -> Result<ReceivedBinder, ArtError> {
    // The native peer object pinned by the global reference.
    let peer = runtime.alloc("android::BpBinder");
    let gref = runtime.add_global(peer)?;
    // The Java-visible proxy; its finalizer releases the global reference,
    // mirroring BinderProxy.finalize() -> destroy().
    let proxy = runtime.alloc("android.os.BinderProxy");
    runtime
        .add_finalizer(proxy, Finalizer::DeleteGlobalRef(gref))
        .expect("proxy was just allocated");
    Ok(ReceivedBinder { node, proxy, gref })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jgre_art::RuntimeState;
    use jgre_sim::{Pid, SimClock, TraceSink};

    fn runtime(cap: usize) -> Runtime {
        Runtime::with_global_capacity(Pid::new(412), SimClock::new(), TraceSink::disabled(), cap)
    }

    #[test]
    fn unretained_proxy_releases_on_gc() {
        let mut rt = runtime(100);
        for _ in 0..10 {
            materialize_strong_binder(&mut rt, NodeId::new(1)).unwrap();
        }
        assert_eq!(rt.global_count(), 10);
        rt.collect_garbage();
        assert_eq!(
            rt.global_count(),
            0,
            "innocent pattern: GC drains the table"
        );
    }

    #[test]
    fn retained_proxy_leaks_across_gc() {
        let mut rt = runtime(100);
        let mut retained = Vec::new();
        for _ in 0..10 {
            let rb = materialize_strong_binder(&mut rt, NodeId::new(1)).unwrap();
            rt.retain(rb.proxy).unwrap();
            retained.push(rb);
        }
        rt.collect_garbage();
        assert_eq!(
            rt.global_count(),
            10,
            "vulnerable pattern: retention pins the JGR"
        );
        // Releasing (e.g. on caller death) lets the next GC drain it.
        for rb in retained {
            rt.release(rb.proxy).unwrap();
        }
        rt.collect_garbage();
        assert_eq!(rt.global_count(), 0);
    }

    #[test]
    fn overflow_during_materialisation_aborts_receiver() {
        let mut rt = runtime(3);
        for _ in 0..3 {
            let rb = materialize_strong_binder(&mut rt, NodeId::new(1)).unwrap();
            rt.retain(rb.proxy).unwrap();
        }
        let err = materialize_strong_binder(&mut rt, NodeId::new(1)).unwrap_err();
        assert!(matches!(err, ArtError::TableOverflow { .. }));
        assert_eq!(rt.state(), RuntimeState::Aborted);
    }
}
