//! The simulated Binder kernel driver: nodes, routing, the transaction log,
//! and death notification links.

use std::collections::BTreeMap;
use std::fmt;

use jgre_sim::{FaultLayer, IpcLogAction, Pid, SimClock, SimTime, TraceSink, Uid};
use serde::{Deserialize, Serialize};

use crate::{BinderError, LatencyModel, Parcel};

/// The Binder transaction buffer per process (1 MB on Android; a single
/// transaction larger than this throws `TransactionTooLargeException`).
pub const TRANSACTION_BUFFER_LIMIT: usize = 1024 * 1024;

/// Identity of a binder node (a service endpoint or a callback object
/// offered across process boundaries). Node ids are global, standing in
/// for per-process handle tables, which the paper's mechanisms never rely
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(u64);

impl NodeId {
    /// Wraps a raw node number.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw node number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

/// One logged transaction — the record format the paper's defense stores in
/// `/proc/jgre_ipc_log`: *"the related data of IPC calls on from_pid,
/// to_pid, target_handle, to_node and timestamp"* (§V-B). We add the caller
/// uid (the kernel knows it) and the interface/method pair, which the real
/// system recovers from the transaction code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpcRecord {
    /// Driver-assigned transaction sequence number. Every routed
    /// transaction consumes one, *including* records a fault injector
    /// drops from the log — sequence gaps are how the defender estimates
    /// its log coverage.
    pub seq: u64,
    /// When the transaction entered the driver.
    pub at: SimTime,
    /// Sending process.
    pub from_pid: Pid,
    /// Sending app uid — what the defender scores and kills by.
    pub from_uid: Uid,
    /// Receiving process (host of the target node).
    pub to_pid: Pid,
    /// Target node.
    pub to_node: NodeId,
    /// Interface descriptor, e.g. `"IClipboard"`.
    pub interface: String,
    /// Method name, e.g. `"addPrimaryClipChangedListener"`.
    pub method: String,
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Code-execution-path tag for the transaction (0 for the common
    /// path). §VI's extension: an attacker may drive one IPC method down
    /// several execution paths with different timing; the instrumented
    /// framework tags the path so the defender can classify calls by it.
    pub path_id: u8,
}

impl IpcRecord {
    /// The `IPCType` key of the paper's Algorithm 1: one scored bucket per
    /// distinct interface/method pair.
    pub fn ipc_type(&self) -> String {
        format!("{}.{}", self.interface, self.method)
    }

    /// The path-classified key of the §VI extension: one bucket per
    /// interface/method/execution-path triple.
    pub fn ipc_type_with_path(&self) -> String {
        format!("{}.{}#{}", self.interface, self.method, self.path_id)
    }
}

/// A registered death link: `watcher` asked to be told when `node` dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeathLink {
    /// The watched node.
    pub node: NodeId,
    /// Process that registered the recipient.
    pub watcher: Pid,
    /// Caller-chosen key so the watcher can find its bookkeeping
    /// (e.g. the retained proxy object to release).
    pub key: u64,
}

/// Delivered when a watched node's hosting process dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeathNotification {
    /// The node that died.
    pub node: NodeId,
    /// Who should be told.
    pub watcher: Pid,
    /// The watcher's key from [`DeathLink`].
    pub key: u64,
}

#[derive(Debug, Clone)]
struct NodeInfo {
    host: Pid,
    label: String,
    alive: bool,
}

/// The simulated driver.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct BinderDriver {
    clock: SimClock,
    trace: TraceSink,
    nodes: BTreeMap<NodeId, NodeInfo>,
    next_node: u64,
    log: Vec<IpcRecord>,
    log_enabled: bool,
    log_sorted: bool,
    next_seq: u64,
    death_links: Vec<DeathLink>,
    latency: LatencyModel,
    defense_recording: bool,
    faults: Option<FaultLayer>,
    reject_counts: BTreeMap<&'static str, u64>,
}

impl BinderDriver {
    /// Creates a driver with the default latency model and IPC logging on.
    pub fn new(clock: SimClock, trace: TraceSink) -> Self {
        Self {
            clock,
            trace,
            nodes: BTreeMap::new(),
            next_node: 1,
            log: Vec::new(),
            log_enabled: true,
            log_sorted: true,
            next_seq: 0,
            death_links: Vec::new(),
            latency: LatencyModel::default(),
            defense_recording: false,
            faults: None,
            reject_counts: BTreeMap::new(),
        }
    }

    /// Counts a fail-stop transaction rejection under `reason` — the
    /// per-reason accounting folded into the driver's transaction log.
    /// The framework dispatcher notes every typed `CallStatus` rejection
    /// here (unknown code, parcel underflow, type confusion, stale
    /// binder, oversized payload), and the driver notes its own
    /// [`BinderError::TransactionTooLarge`] refusals, so one ledger
    /// answers "what did malformed traffic get rejected for".
    pub fn note_reject(&mut self, reason: &'static str) {
        *self.reject_counts.entry(reason).or_insert(0) += 1;
    }

    /// Per-reason rejection counters, keyed by the fail-stop reason label.
    pub fn reject_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.reject_counts
    }

    /// Total rejections across all reasons.
    pub fn total_rejects(&self) -> u64 {
        self.reject_counts.values().sum()
    }

    /// Installs a fault layer; subsequent log appends route through it.
    /// Pass an [inactive](FaultLayer::inactive) layer (or never call this)
    /// for a pristine driver.
    pub fn set_fault_layer(&mut self, faults: FaultLayer) {
        self.faults = Some(faults);
    }

    /// Whether the log is still known to be time-ordered. Delay/reorder
    /// faults clear this; readers must then stop assuming sortedness.
    pub fn log_is_sorted(&self) -> bool {
        self.log_sorted
    }

    /// Replaces the latency model (used by the Figure 10 sweep).
    pub fn set_latency_model(&mut self, model: LatencyModel) {
        self.latency = model;
    }

    /// Enables or disables the extra per-transaction recording cost the
    /// paper's extended driver incurs (Figure 10 compares both).
    pub fn set_defense_recording(&mut self, enabled: bool) {
        self.defense_recording = enabled;
    }

    /// Whether defense recording is on.
    pub fn defense_recording(&self) -> bool {
        self.defense_recording
    }

    /// Enables or disables the in-memory transaction log. Long benign
    /// baselines (Figure 4) disable it to bound memory.
    pub fn set_log_enabled(&mut self, enabled: bool) {
        self.log_enabled = enabled;
    }

    /// Registers a new node hosted by `host`.
    pub fn create_node(&mut self, host: Pid, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes.insert(
            id,
            NodeInfo {
                host,
                label: label.into(),
                alive: true,
            },
        );
        id
    }

    /// Host process of a node.
    ///
    /// # Errors
    ///
    /// [`BinderError::UnknownNode`] if the node was never created,
    /// [`BinderError::DeadNode`] if its host died.
    pub fn node_host(&self, node: NodeId) -> Result<Pid, BinderError> {
        let info = self.nodes.get(&node).ok_or(BinderError::UnknownNode)?;
        if !info.alive {
            return Err(BinderError::DeadNode);
        }
        Ok(info.host)
    }

    /// Human-readable node label (service or callback name).
    pub fn node_label(&self, node: NodeId) -> Option<&str> {
        self.nodes.get(&node).map(|i| i.label.as_str())
    }

    /// Whether the node is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.get(&node).is_some_and(|i| i.alive)
    }

    /// Routes one transaction: validates the target, advances the virtual
    /// clock by the modelled transaction latency, and appends to the log.
    /// Returns the record (also retained in [`log`](Self::log)).
    ///
    /// # Errors
    ///
    /// [`BinderError::UnknownNode`] / [`BinderError::DeadNode`] for bad
    /// targets.
    pub fn record_transaction(
        &mut self,
        from_pid: Pid,
        from_uid: Uid,
        node: NodeId,
        interface: &str,
        method: &str,
        parcel: &Parcel,
    ) -> Result<IpcRecord, BinderError> {
        self.record_transaction_on_path(from_pid, from_uid, node, interface, method, parcel, 0)
    }

    /// Like [`record_transaction`](Self::record_transaction), tagging the
    /// execution path the handler will take (the §VI extension).
    #[allow(clippy::too_many_arguments)]
    pub fn record_transaction_on_path(
        &mut self,
        from_pid: Pid,
        from_uid: Uid,
        node: NodeId,
        interface: &str,
        method: &str,
        parcel: &Parcel,
        path_id: u8,
    ) -> Result<IpcRecord, BinderError> {
        let to_pid = self.node_host(node)?;
        let payload_bytes = parcel.payload_size();
        if payload_bytes > TRANSACTION_BUFFER_LIMIT {
            self.note_reject("oversized-payload");
            return Err(BinderError::TransactionTooLarge {
                size: payload_bytes,
                limit: TRANSACTION_BUFFER_LIMIT,
            });
        }
        let cost = self
            .latency
            .transaction_cost(payload_bytes, self.defense_recording);
        let at = self.clock.now();
        self.clock.advance(cost);
        let seq = self.next_seq;
        self.next_seq += 1;
        let record = IpcRecord {
            seq,
            at,
            from_pid,
            from_uid,
            to_pid,
            to_node: node,
            interface: interface.to_owned(),
            method: method.to_owned(),
            payload_bytes,
            path_id,
        };
        self.trace.record(
            at,
            Some(from_pid),
            Some(from_uid),
            "binder.transact",
            record.ipc_type(),
        );
        if self.log_enabled {
            self.append_to_log(&record);
        }
        Ok(record)
    }

    /// Appends the *logged copy* of a routed transaction, letting the
    /// fault layer (if any) drop, duplicate, delay, reorder, or jitter it.
    /// The caller-visible record keeps the true timestamp: faults corrupt
    /// what the defender *observes*, never what actually happened.
    fn append_to_log(&mut self, record: &IpcRecord) {
        let Some(faults) = self.faults.as_ref().filter(|f| f.is_active()) else {
            self.log.push(record.clone());
            return;
        };
        let mut logged = record.clone();
        logged.at = faults.jitter_ipc_timestamp(logged.at);
        match faults.ipc_log_action() {
            IpcLogAction::Drop => return,
            IpcLogAction::Keep => {}
            IpcLogAction::Duplicate => self.push_logged(logged.clone()),
            IpcLogAction::DelayBy(skew) => logged.at += skew,
            IpcLogAction::Reorder => {
                self.push_logged(logged);
                let n = self.log.len();
                if n >= 2 {
                    self.log.swap(n - 1, n - 2);
                    self.log_sorted = false;
                }
                return;
            }
        }
        self.push_logged(logged);
    }

    fn push_logged(&mut self, record: IpcRecord) {
        if let Some(last) = self.log.last() {
            if record.at < last.at {
                self.log_sorted = false;
            }
        }
        self.log.push(record);
    }

    /// The full transaction log (the defender's `/proc/jgre_ipc_log`).
    pub fn log(&self) -> &[IpcRecord] {
        &self.log
    }

    /// Log records at or after `since`.
    ///
    /// A fault-free log is time-ordered and a partition point avoids a
    /// full scan; once delay/reorder faults have unsorted it, this falls
    /// back to filtering the whole log rather than silently skipping
    /// out-of-place records.
    pub fn log_since(&self, since: SimTime) -> impl Iterator<Item = &IpcRecord> {
        let start = if self.log_sorted {
            self.log.partition_point(|r| r.at < since)
        } else {
            0
        };
        self.log[start..].iter().filter(move |r| r.at >= since)
    }

    /// Drops log records older than `before`, modelling the bounded proc
    /// file.
    pub fn prune_log(&mut self, before: SimTime) {
        if self.log_sorted {
            let start = self.log.partition_point(|r| r.at < before);
            self.log.drain(..start);
        } else {
            self.log.retain(|r| r.at >= before);
            // Whatever unsorted prefix existed has been reconsidered
            // record-by-record; sortedness of the remainder is unknown,
            // so recompute it once here.
            self.log_sorted = self.log.windows(2).all(|w| w[0].at <= w[1].at);
        }
    }

    /// Registers a death recipient: `watcher` will be notified when
    /// `node`'s host dies (`Binder.linkToDeath`). The JNI global reference
    /// the real `JavaDeathRecipient` creates is the *caller's* concern —
    /// the framework pairs this call with an `add_global` on the watcher's
    /// runtime, matching the paper's JGR-entry mapping for `linkToDeath`.
    ///
    /// # Errors
    ///
    /// [`BinderError::UnknownNode`] / [`BinderError::DeadNode`].
    pub fn link_to_death(
        &mut self,
        node: NodeId,
        watcher: Pid,
        key: u64,
    ) -> Result<(), BinderError> {
        self.node_host(node)?;
        self.death_links.push(DeathLink { node, watcher, key });
        Ok(())
    }

    /// Removes a death link (`unlinkToDeath`).
    ///
    /// # Errors
    ///
    /// [`BinderError::UnknownDeathLink`] when no matching link exists.
    pub fn unlink_to_death(
        &mut self,
        node: NodeId,
        watcher: Pid,
        key: u64,
    ) -> Result<(), BinderError> {
        let before = self.death_links.len();
        self.death_links
            .retain(|l| !(l.node == node && l.watcher == watcher && l.key == key));
        if self.death_links.len() == before {
            return Err(BinderError::UnknownDeathLink);
        }
        Ok(())
    }

    /// Number of live death links (for tests and invariants).
    pub fn death_link_count(&self) -> usize {
        self.death_links.len()
    }

    /// Marks every node hosted by `pid` dead and returns the death
    /// notifications to deliver. Links watched *by* the dead process are
    /// dropped.
    pub fn kill_process(&mut self, pid: Pid) -> Vec<DeathNotification> {
        let mut dead_nodes = Vec::new();
        for (id, info) in self.nodes.iter_mut() {
            if info.host == pid && info.alive {
                info.alive = false;
                dead_nodes.push(*id);
            }
        }
        let mut notifications = Vec::new();
        self.death_links.retain(|link| {
            if link.watcher == pid {
                return false;
            }
            if dead_nodes.contains(&link.node) {
                notifications.push(DeathNotification {
                    node: link.node,
                    watcher: link.watcher,
                    key: link.key,
                });
                return false;
            }
            true
        });
        self.trace.record(
            self.clock.now(),
            Some(pid),
            None,
            "binder.process_death",
            format!(
                "nodes={} notifications={}",
                dead_nodes.len(),
                notifications.len()
            ),
        );
        notifications
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver() -> BinderDriver {
        BinderDriver::new(SimClock::new(), TraceSink::disabled())
    }

    #[test]
    fn transaction_routes_to_host() {
        let mut d = driver();
        let node = d.create_node(Pid::new(412), "wifi");
        let mut p = Parcel::new();
        p.write_i32(1);
        let rec = d
            .record_transaction(
                Pid::new(9000),
                Uid::new(10061),
                node,
                "IWifiManager",
                "acquireWifiLock",
                &p,
            )
            .unwrap();
        assert_eq!(rec.to_pid, Pid::new(412));
        assert_eq!(rec.ipc_type(), "IWifiManager.acquireWifiLock");
        assert_eq!(d.log().len(), 1);
    }

    #[test]
    fn transactions_advance_the_clock() {
        let clock = SimClock::new();
        let mut d = BinderDriver::new(clock.clone(), TraceSink::disabled());
        let node = d.create_node(Pid::new(1), "svc");
        let p = Parcel::new();
        d.record_transaction(Pid::new(2), Uid::new(10000), node, "I", "m", &p)
            .unwrap();
        assert!(
            clock.now() > SimTime::ZERO,
            "latency model must advance time"
        );
    }

    #[test]
    fn dead_node_rejects_transactions() {
        let mut d = driver();
        let node = d.create_node(Pid::new(1), "svc");
        d.kill_process(Pid::new(1));
        let p = Parcel::new();
        assert_eq!(
            d.record_transaction(Pid::new(2), Uid::new(10000), node, "I", "m", &p),
            Err(BinderError::DeadNode)
        );
        assert_eq!(d.node_host(node), Err(BinderError::DeadNode));
        assert!(!d.is_alive(node));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut d = driver();
        let p = Parcel::new();
        assert_eq!(
            d.record_transaction(Pid::new(2), Uid::new(10000), NodeId::new(99), "I", "m", &p),
            Err(BinderError::UnknownNode)
        );
    }

    #[test]
    fn death_links_fire_on_process_death() {
        let mut d = driver();
        let app_node = d.create_node(Pid::new(9000), "callback");
        d.link_to_death(app_node, Pid::new(412), 77).unwrap();
        assert_eq!(d.death_link_count(), 1);
        let notes = d.kill_process(Pid::new(9000));
        assert_eq!(
            notes,
            vec![DeathNotification {
                node: app_node,
                watcher: Pid::new(412),
                key: 77
            }]
        );
        assert_eq!(d.death_link_count(), 0);
    }

    #[test]
    fn unlink_removes_exactly_one_registration() {
        let mut d = driver();
        let node = d.create_node(Pid::new(9000), "cb");
        d.link_to_death(node, Pid::new(412), 1).unwrap();
        d.link_to_death(node, Pid::new(412), 2).unwrap();
        d.unlink_to_death(node, Pid::new(412), 1).unwrap();
        assert_eq!(d.death_link_count(), 1);
        assert_eq!(
            d.unlink_to_death(node, Pid::new(412), 1),
            Err(BinderError::UnknownDeathLink)
        );
        let notes = d.kill_process(Pid::new(9000));
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].key, 2);
    }

    #[test]
    fn watcher_death_drops_its_links() {
        let mut d = driver();
        let node = d.create_node(Pid::new(9000), "cb");
        d.link_to_death(node, Pid::new(412), 1).unwrap();
        d.kill_process(Pid::new(412));
        assert_eq!(d.death_link_count(), 0);
        // The watched node's later death notifies nobody.
        assert!(d.kill_process(Pid::new(9000)).is_empty());
    }

    #[test]
    fn log_since_and_prune() {
        let clock = SimClock::new();
        let mut d = BinderDriver::new(clock.clone(), TraceSink::disabled());
        let node = d.create_node(Pid::new(1), "svc");
        let p = Parcel::new();
        let mut stamps = Vec::new();
        for _ in 0..5 {
            let rec = d
                .record_transaction(Pid::new(2), Uid::new(10000), node, "I", "m", &p)
                .unwrap();
            stamps.push(rec.at);
        }
        let mid = stamps[2];
        assert_eq!(d.log_since(mid).count(), 3);
        d.prune_log(mid);
        assert_eq!(d.log().len(), 3);
        assert_eq!(d.log()[0].at, mid);
    }

    #[test]
    fn oversized_transactions_are_rejected() {
        let mut d = driver();
        let node = d.create_node(Pid::new(1), "svc");
        let mut p = Parcel::new();
        p.write_blob(2 * 1024 * 1024);
        assert!(matches!(
            d.record_transaction(Pid::new(2), Uid::new(10_000), node, "I", "m", &p),
            Err(BinderError::TransactionTooLarge { .. })
        ));
        assert!(d.log().is_empty(), "rejected transactions are not logged");
        assert_eq!(d.reject_counts().get("oversized-payload"), Some(&1));
        assert_eq!(d.total_rejects(), 1);
        // Just under the limit is fine.
        let mut p = Parcel::new();
        p.write_blob(1024 * 1024 - 64);
        assert!(d
            .record_transaction(Pid::new(2), Uid::new(10_000), node, "I", "m", &p)
            .is_ok());
    }

    #[test]
    fn seq_numbers_are_dense_and_monotonic() {
        let mut d = driver();
        let node = d.create_node(Pid::new(1), "svc");
        let p = Parcel::new();
        for expected in 0..4u64 {
            let rec = d
                .record_transaction(Pid::new(2), Uid::new(10000), node, "I", "m", &p)
                .unwrap();
            assert_eq!(rec.seq, expected);
        }
    }

    #[test]
    fn inactive_fault_layer_changes_nothing() {
        let mut faulted = driver();
        faulted.set_fault_layer(FaultLayer::inactive());
        let mut plain = driver();
        let pn = plain.create_node(Pid::new(1), "svc");
        let fnode = faulted.create_node(Pid::new(1), "svc");
        let p = Parcel::new();
        for _ in 0..8 {
            plain
                .record_transaction(Pid::new(2), Uid::new(10000), pn, "I", "m", &p)
                .unwrap();
            faulted
                .record_transaction(Pid::new(2), Uid::new(10000), fnode, "I", "m", &p)
                .unwrap();
        }
        assert_eq!(plain.log(), faulted.log());
        assert!(faulted.log_is_sorted());
    }

    #[test]
    fn drop_faults_leave_seq_gaps() {
        use jgre_sim::{FaultIntensity, FaultKind, FaultPlan};
        let mut d = driver();
        d.set_fault_layer(FaultLayer::new(
            FaultPlan::single(FaultKind::IpcDrop, FaultIntensity::Severe),
            3,
        ));
        let node = d.create_node(Pid::new(1), "svc");
        let p = Parcel::new();
        for _ in 0..200 {
            d.record_transaction(Pid::new(2), Uid::new(10000), node, "I", "m", &p)
                .unwrap();
        }
        assert!(d.log().len() < 200, "severe drop rate must lose records");
        // Surviving records keep their original (gapped) sequence numbers.
        let seqs: Vec<u64> = d.log().iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert!(*seqs.last().unwrap() > seqs.len() as u64 - 1, "gaps exist");
    }

    #[test]
    fn reorder_faults_unsort_the_log_and_readers_cope() {
        use jgre_sim::{FaultIntensity, FaultKind, FaultPlan};
        let mut d = driver();
        d.set_fault_layer(FaultLayer::new(
            FaultPlan::single(FaultKind::IpcReorder, FaultIntensity::Severe),
            5,
        ));
        let node = d.create_node(Pid::new(1), "svc");
        let p = Parcel::new();
        let mut stamps = Vec::new();
        for _ in 0..100 {
            let rec = d
                .record_transaction(Pid::new(2), Uid::new(10000), node, "I", "m", &p)
                .unwrap();
            stamps.push(rec.at);
        }
        assert!(!d.log_is_sorted(), "severe reorder must unsort the log");
        let mid = stamps[50];
        let expected = d.log().iter().filter(|r| r.at >= mid).count();
        assert_eq!(d.log_since(mid).count(), expected);
        d.prune_log(mid);
        assert_eq!(d.log().len(), expected);
        assert!(d.log().iter().all(|r| r.at >= mid));
    }

    #[test]
    fn log_can_be_disabled() {
        let mut d = driver();
        d.set_log_enabled(false);
        let node = d.create_node(Pid::new(1), "svc");
        let p = Parcel::new();
        d.record_transaction(Pid::new(2), Uid::new(10000), node, "I", "m", &p)
            .unwrap();
        assert!(d.log().is_empty());
    }
}
