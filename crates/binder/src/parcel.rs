//! Typed transaction payloads.

use serde::{Deserialize, Serialize};

use crate::{BinderError, NodeId};

/// One value inside a [`Parcel`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParcelValue {
    /// A 32-bit integer (4 bytes on the wire).
    I32(i32),
    /// A 64-bit integer (8 bytes).
    I64(i64),
    /// A UTF-16 string (4-byte length prefix + 2 bytes per char).
    String(String),
    /// An opaque byte blob of the given length; only the size matters for
    /// the simulation (Figure 10 sweeps payload size).
    Blob(usize),
    /// A strong binder reference — the `flat_binder_object` whose
    /// unmarshalling creates a JNI global reference in the receiver.
    StrongBinder(NodeId),
}

impl ParcelValue {
    /// On-the-wire byte size, approximating Android's parcel layout.
    pub fn byte_size(&self) -> usize {
        match self {
            ParcelValue::I32(_) => 4,
            ParcelValue::I64(_) => 8,
            ParcelValue::String(s) => 4 + 2 * s.chars().count(),
            ParcelValue::Blob(len) => 4 + len,
            // sizeof(flat_binder_object) on 64-bit Android.
            ParcelValue::StrongBinder(_) => 24,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            ParcelValue::I32(_) => "i32",
            ParcelValue::I64(_) => "i64",
            ParcelValue::String(_) => "string",
            ParcelValue::Blob(_) => "blob",
            ParcelValue::StrongBinder(_) => "strong-binder",
        }
    }
}

/// An ordered, typed payload for one Binder transaction.
///
/// Writing appends; reading consumes front-to-back through an internal
/// cursor, mirroring `android.os.Parcel`'s position semantics.
///
/// # Example
///
/// ```
/// use jgre_binder::Parcel;
///
/// let mut p = Parcel::new();
/// p.write_string("android"); // the enqueueToast spoof from Code-Snippet 3
/// p.write_i32(7);
/// assert_eq!(p.read_string()?, "android");
/// assert_eq!(p.read_i32()?, 7);
/// # Ok::<(), jgre_binder::BinderError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parcel {
    values: Vec<ParcelValue>,
    cursor: usize,
}

impl Parcel {
    /// Creates an empty parcel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a 32-bit integer.
    pub fn write_i32(&mut self, v: i32) -> &mut Self {
        self.values.push(ParcelValue::I32(v));
        self
    }

    /// Appends a 64-bit integer.
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.values.push(ParcelValue::I64(v));
        self
    }

    /// Appends a string.
    pub fn write_string(&mut self, v: impl Into<String>) -> &mut Self {
        self.values.push(ParcelValue::String(v.into()));
        self
    }

    /// Appends an opaque blob of `len` bytes.
    pub fn write_blob(&mut self, len: usize) -> &mut Self {
        self.values.push(ParcelValue::Blob(len));
        self
    }

    /// Appends a strong binder (`Parcel.writeStrongBinder`). On the Java
    /// side this is `Parcel.nativeWriteStrongBinder`, one of the two
    /// special JGR entries the paper's detector handles out-of-band
    /// (§III-C.2).
    pub fn write_strong_binder(&mut self, node: NodeId) -> &mut Self {
        self.values.push(ParcelValue::StrongBinder(node));
        self
    }

    /// Core read: consumes the next value iff it has the expected type.
    ///
    /// **Cursor determinism contract.** A failed read — underflow or type
    /// mismatch — leaves the cursor exactly where it was, so the sequence
    /// of reads a dispatcher performs is a pure function of the parcel
    /// bytes: replaying the same parcel always fails at the same position
    /// with the same error. Fuzz-input replay (`jgre fuzz`) depends on
    /// this; `partial_read_failure_is_cursor_stable` pins it.
    fn read(&mut self, expected: &'static str) -> Result<&ParcelValue, BinderError> {
        let value = self
            .values
            .get(self.cursor)
            .ok_or(BinderError::ParcelUnderflow)?;
        if value.type_name() != expected {
            return Err(BinderError::ParcelTypeMismatch {
                expected,
                found: value.type_name(),
            });
        }
        self.cursor += 1;
        Ok(value)
    }

    /// Reads the next value as an `i32`.
    ///
    /// # Errors
    ///
    /// [`BinderError::ParcelUnderflow`] or
    /// [`BinderError::ParcelTypeMismatch`].
    pub fn read_i32(&mut self) -> Result<i32, BinderError> {
        match self.read("i32")? {
            ParcelValue::I32(v) => Ok(*v),
            _ => unreachable!("type checked by read()"),
        }
    }

    /// Reads the next value as an `i64`.
    ///
    /// # Errors
    ///
    /// [`BinderError::ParcelUnderflow`] or
    /// [`BinderError::ParcelTypeMismatch`].
    pub fn read_i64(&mut self) -> Result<i64, BinderError> {
        match self.read("i64")? {
            ParcelValue::I64(v) => Ok(*v),
            _ => unreachable!("type checked by read()"),
        }
    }

    /// Reads the next value as a string.
    ///
    /// # Errors
    ///
    /// [`BinderError::ParcelUnderflow`] or
    /// [`BinderError::ParcelTypeMismatch`].
    pub fn read_string(&mut self) -> Result<String, BinderError> {
        match self.read("string")? {
            ParcelValue::String(s) => Ok(s.clone()),
            _ => unreachable!("type checked by read()"),
        }
    }

    /// Reads the next value as a blob, returning its length.
    ///
    /// # Errors
    ///
    /// [`BinderError::ParcelUnderflow`] or
    /// [`BinderError::ParcelTypeMismatch`].
    pub fn read_blob(&mut self) -> Result<usize, BinderError> {
        match self.read("blob")? {
            ParcelValue::Blob(len) => Ok(*len),
            _ => unreachable!("type checked by read()"),
        }
    }

    /// Reads the next value as a strong binder (`Parcel.readStrongBinder`).
    ///
    /// Note that this only yields the node id; turning it into a proxy
    /// object plus a JNI global reference in the receiving runtime is
    /// [`materialize_strong_binder`](crate::materialize_strong_binder) —
    /// the separation matches Android, where the JGR is created by
    /// `javaObjectForIBinder`, not by the parcel itself.
    ///
    /// # Errors
    ///
    /// [`BinderError::ParcelUnderflow`] or
    /// [`BinderError::ParcelTypeMismatch`].
    pub fn read_strong_binder(&mut self) -> Result<NodeId, BinderError> {
        match self.read("strong-binder")? {
            ParcelValue::StrongBinder(node) => Ok(*node),
            _ => unreachable!("type checked by read()"),
        }
    }

    /// Total payload size in bytes.
    pub fn payload_size(&self) -> usize {
        self.values.iter().map(ParcelValue::byte_size).sum()
    }

    /// Number of values written.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the parcel holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All strong binders in the parcel, in order — used by the framework
    /// dispatcher to materialise proxies on delivery.
    pub fn strong_binders(&self) -> Vec<NodeId> {
        self.values
            .iter()
            .filter_map(|v| match v {
                ParcelValue::StrongBinder(n) => Some(*n),
                _ => None,
            })
            .collect()
    }

    /// Resets the read cursor to the beginning (`Parcel.setDataPosition(0)`).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Current read cursor as a value index (`Parcel.dataPosition`, in
    /// values rather than bytes). Failed reads do not move it.
    pub fn data_position(&self) -> usize {
        self.cursor
    }

    /// Moves the read cursor to value index `pos`, clamped to the parcel
    /// length (`Parcel.setDataPosition`). Positions past the end simply
    /// make the next read underflow.
    pub fn set_data_position(&mut self, pos: usize) {
        self.cursor = pos.min(self.values.len());
    }

    /// Values left to read from the cursor to the end.
    pub fn remaining(&self) -> usize {
        self.values.len() - self.cursor
    }

    /// Type name of the next unread value (`"i32"`, `"i64"`, `"string"`,
    /// `"blob"`, `"strong-binder"`), or `None` at the end. Lets a
    /// dispatcher consume optional trailing values without burning a
    /// failed read.
    pub fn peek_type(&self) -> Option<&'static str> {
        self.values.get(self.cursor).map(ParcelValue::type_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut p = Parcel::new();
        p.write_i32(1)
            .write_i64(2)
            .write_string("hi")
            .write_blob(100)
            .write_strong_binder(NodeId::new(5));
        assert_eq!(p.len(), 5);
        assert_eq!(p.read_i32().unwrap(), 1);
        assert_eq!(p.read_i64().unwrap(), 2);
        assert_eq!(p.read_string().unwrap(), "hi");
        assert_eq!(p.read_blob().unwrap(), 100);
        assert_eq!(p.read_strong_binder().unwrap(), NodeId::new(5));
        assert_eq!(p.read_i32(), Err(BinderError::ParcelUnderflow));
    }

    #[test]
    fn type_mismatch_reported_without_consuming() {
        let mut p = Parcel::new();
        p.write_string("x");
        assert_eq!(
            p.read_i32(),
            Err(BinderError::ParcelTypeMismatch {
                expected: "i32",
                found: "string"
            })
        );
        // The value is still readable with the right type.
        assert_eq!(p.read_string().unwrap(), "x");
    }

    #[test]
    fn payload_size_model() {
        let mut p = Parcel::new();
        p.write_i32(0).write_string("ab").write_blob(1024);
        // 4 + (4 + 2*2) + (4 + 1024)
        assert_eq!(p.payload_size(), 4 + 8 + 1028);
    }

    #[test]
    fn strong_binders_extracted_in_order() {
        let mut p = Parcel::new();
        p.write_strong_binder(NodeId::new(1))
            .write_i32(9)
            .write_strong_binder(NodeId::new(2));
        assert_eq!(p.strong_binders(), vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn rewind_allows_rereading() {
        let mut p = Parcel::new();
        p.write_i32(7);
        assert_eq!(p.read_i32().unwrap(), 7);
        p.rewind();
        assert_eq!(p.read_i32().unwrap(), 7);
    }

    #[test]
    fn partial_read_failure_is_cursor_stable() {
        // A dispatcher that replays the same parcel must fail at the same
        // position with the same error every time — the cursor may not
        // drift across failed reads.
        let mut p = Parcel::new();
        p.write_string("pkg").write_i32(9);
        assert_eq!(p.read_string().unwrap(), "pkg");
        let pos = p.data_position();
        assert_eq!(pos, 1);
        // Mismatched read: cursor unchanged, repeatable.
        for _ in 0..3 {
            assert!(matches!(
                p.read_strong_binder(),
                Err(BinderError::ParcelTypeMismatch { .. })
            ));
            assert_eq!(p.data_position(), pos);
        }
        // The value is still there for the correct type.
        assert_eq!(p.read_i32().unwrap(), 9);
        // Underflow: cursor pinned at the end, repeatable.
        for _ in 0..3 {
            assert_eq!(p.read_i32(), Err(BinderError::ParcelUnderflow));
            assert_eq!(p.data_position(), 2);
        }
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    fn data_position_round_trips() {
        let mut p = Parcel::new();
        p.write_i32(1).write_i32(2).write_i32(3);
        assert_eq!(p.data_position(), 0);
        p.set_data_position(2);
        assert_eq!(p.read_i32().unwrap(), 3);
        // Clamped past the end: next read underflows instead of panicking.
        p.set_data_position(99);
        assert_eq!(p.data_position(), 3);
        assert_eq!(p.read_i32(), Err(BinderError::ParcelUnderflow));
        p.rewind();
        assert_eq!(p.remaining(), 3);
        assert_eq!(p.peek_type(), Some("i32"));
    }

    #[test]
    fn peek_type_does_not_consume() {
        let mut p = Parcel::new();
        p.write_blob(16);
        assert_eq!(p.peek_type(), Some("blob"));
        assert_eq!(p.data_position(), 0);
        assert_eq!(p.read_blob().unwrap(), 16);
        assert_eq!(p.peek_type(), None);
    }
}
