//! The service manager: Android's name → binder directory.

use std::collections::BTreeMap;

use crate::{BinderError, NodeId};

/// Name-based service registry (`android.os.ServiceManager`).
///
/// Every exploit in the paper starts here: Code-Snippet 2 calls
/// `ServiceManager.getService("wifi")` to bypass the `WifiManager` helper
/// and talk to the vulnerable service directly.
///
/// # Example
///
/// ```
/// use jgre_binder::{NodeId, ServiceManager};
///
/// let mut sm = ServiceManager::new();
/// sm.add_service("clipboard", NodeId::new(3))?;
/// assert_eq!(sm.get_service("clipboard"), Some(NodeId::new(3)));
/// assert_eq!(sm.get_service("nope"), None);
/// # Ok::<(), jgre_binder::BinderError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceManager {
    services: BTreeMap<String, NodeId>,
}

impl ServiceManager {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `node` under `name` (`ServiceManager.addService` /
    /// `publishBinderService`).
    ///
    /// # Errors
    ///
    /// [`BinderError::ServiceNameTaken`] when the name is already bound.
    pub fn add_service(
        &mut self,
        name: impl Into<String>,
        node: NodeId,
    ) -> Result<(), BinderError> {
        let name = name.into();
        if self.services.contains_key(&name) {
            return Err(BinderError::ServiceNameTaken(name));
        }
        self.services.insert(name, node);
        Ok(())
    }

    /// Looks up a service by name.
    pub fn get_service(&self, name: &str) -> Option<NodeId> {
        self.services.get(name).copied()
    }

    /// All registered service names, sorted.
    pub fn list_services(&self) -> Vec<&str> {
        self.services.keys().map(String::as_str).collect()
    }

    /// Number of registered services (the paper counts 104 on 6.0.1).
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether no services are registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut sm = ServiceManager::new();
        sm.add_service("wifi", NodeId::new(1)).unwrap();
        sm.add_service("audio", NodeId::new(2)).unwrap();
        assert_eq!(sm.len(), 2);
        assert_eq!(sm.get_service("wifi"), Some(NodeId::new(1)));
        assert_eq!(sm.list_services(), vec!["audio", "wifi"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut sm = ServiceManager::new();
        sm.add_service("wifi", NodeId::new(1)).unwrap();
        assert_eq!(
            sm.add_service("wifi", NodeId::new(2)),
            Err(BinderError::ServiceNameTaken("wifi".into()))
        );
        // Original binding survives.
        assert_eq!(sm.get_service("wifi"), Some(NodeId::new(1)));
    }
}
