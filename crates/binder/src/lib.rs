//! Simulated Binder IPC for the JGRE reproduction.
//!
//! Every attack in the paper travels through Binder: a malicious app gets a
//! handle to a system service from the service manager, then fires
//! transactions whose unmarshalling creates JNI global references in the
//! *receiving* process (`Parcel.readStrongBinder()` →
//! `android::ibinderForJavaObject` → `NewGlobalRef`). The defense reads the
//! kernel driver's transaction log. This crate models exactly those parts:
//!
//! * [`Parcel`] — typed payloads including strong binders, with a byte-size
//!   model used by the Figure 10 overhead experiment.
//! * [`BinderDriver`] — node registry, transaction routing/logging
//!   (the `/proc/jgre_ipc_log` analog of §V-B), death notification links,
//!   and a latency model with an optional defense-recording overhead.
//! * [`ServiceManager`] — `addService`/`getService` by name, the discovery
//!   step of every exploit (`ServiceManager.getService("wifi")`).
//! * [`materialize_strong_binder`] — the unmarshalling step that turns an
//!   incoming node into a proxy object plus a global reference in the
//!   receiving runtime; this is the JGR-entry point the static analysis
//!   hunts for.
//!
//! # Example
//!
//! ```
//! use jgre_binder::{BinderDriver, Parcel, ServiceManager};
//! use jgre_sim::{Pid, SimClock, TraceSink, Uid};
//!
//! let clock = SimClock::new();
//! let mut driver = BinderDriver::new(clock.clone(), TraceSink::disabled());
//! let mut sm = ServiceManager::new();
//!
//! // system_server publishes the clipboard service.
//! let node = driver.create_node(Pid::new(412), "clipboard");
//! sm.add_service("clipboard", node)?;
//!
//! // An app finds it and sends a transaction.
//! let found = sm.get_service("clipboard").unwrap();
//! let mut parcel = Parcel::new();
//! parcel.write_string("listener registration");
//! let record = driver.record_transaction(
//!     Pid::new(9001), Uid::new(10061), found,
//!     "IClipboard", "addPrimaryClipChangedListener", &parcel)?;
//! assert_eq!(record.to_pid, Pid::new(412));
//! assert_eq!(driver.log().len(), 1);
//! # Ok::<(), jgre_binder::BinderError>(())
//! ```

mod driver;
mod error;
mod latency;
mod parcel;
mod service_manager;
mod strong_binder;

pub use driver::{
    BinderDriver, DeathLink, DeathNotification, IpcRecord, NodeId, TRANSACTION_BUFFER_LIMIT,
};
pub use error::BinderError;
pub use latency::LatencyModel;
pub use parcel::{Parcel, ParcelValue};
pub use service_manager::ServiceManager;
pub use strong_binder::{materialize_strong_binder, ReceivedBinder};
