//! Transaction latency model, calibrated against the paper's Figure 10.
//!
//! Figure 10 plots IPC execution time against payload size (0–500 KB) for
//! stock Android and for the extended driver that records IPC calls. The
//! paper reports the defense adds at most 1.247 ms per call, an overhead of
//! about 46.7 %. A linear model reproduces both series' shapes:
//!
//! * stock: `base + per_kb × KB`
//! * defense: `(base + per_kb × KB) × (1 + overhead)`

use jgre_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Linear cost model for one Binder transaction.
///
/// # Example
///
/// ```
/// use jgre_binder::LatencyModel;
///
/// let m = LatencyModel::default();
/// let stock = m.transaction_cost(500 * 1024, false);
/// let defended = m.transaction_cost(500 * 1024, true);
/// assert!(defended > stock);
/// // Overhead stays in the paper's ballpark (~46.7%).
/// let ratio = defended.as_micros() as f64 / stock.as_micros() as f64;
/// assert!((1.4..1.55).contains(&ratio));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed cost per transaction, microseconds.
    pub base_us: u64,
    /// Marginal cost per KiB of payload, microseconds.
    pub per_kib_us: u64,
    /// Multiplicative overhead of defense recording (0.467 = +46.7 %).
    pub defense_overhead: f64,
}

impl Default for LatencyModel {
    /// Calibration: at 500 KB the stock curve sits near 2.7 ms so that the
    /// defended curve tops out around 3.9–4.0 ms, matching Figure 10's
    /// axes (max delay with defense ≈ stock + 1.247 ms).
    fn default() -> Self {
        Self {
            base_us: 100,
            per_kib_us: 5,
            defense_overhead: 0.467,
        }
    }
}

impl LatencyModel {
    /// Cost of a transaction carrying `payload_bytes`, with or without the
    /// defense's recording overhead.
    pub fn transaction_cost(&self, payload_bytes: usize, defense: bool) -> SimDuration {
        let kib = payload_bytes as u64 / 1024;
        let stock = self.base_us + self.per_kib_us * kib;
        let total = if defense {
            (stock as f64 * (1.0 + self.defense_overhead)).round() as u64
        } else {
            stock
        };
        SimDuration::from_micros(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_payload_costs_base() {
        let m = LatencyModel::default();
        assert_eq!(m.transaction_cost(0, false).as_micros(), 100);
    }

    #[test]
    fn cost_grows_linearly_with_payload() {
        let m = LatencyModel::default();
        let c100 = m.transaction_cost(100 * 1024, false).as_micros();
        let c200 = m.transaction_cost(200 * 1024, false).as_micros();
        let c300 = m.transaction_cost(300 * 1024, false).as_micros();
        assert_eq!(c200 - c100, c300 - c200);
    }

    #[test]
    fn defense_overhead_bounded_like_fig10() {
        let m = LatencyModel::default();
        // Max added delay across the paper's sweep stays ≤ 1.247 ms.
        let mut max_added = 0u64;
        for kb in (0..=500).step_by(10) {
            let stock = m.transaction_cost(kb * 1024, false).as_micros();
            let defended = m.transaction_cost(kb * 1024, true).as_micros();
            max_added = max_added.max(defended - stock);
        }
        assert!(
            max_added <= 1_247,
            "added delay {max_added}µs exceeds paper bound"
        );
    }

    #[test]
    fn custom_model_respected() {
        let m = LatencyModel {
            base_us: 10,
            per_kib_us: 1,
            defense_overhead: 1.0,
        };
        assert_eq!(m.transaction_cost(2048, false).as_micros(), 12);
        assert_eq!(m.transaction_cost(2048, true).as_micros(), 24);
    }
}
