//! Property-based tests for parcels and the driver.

use jgre_binder::{BinderDriver, BinderError, NodeId, Parcel, ParcelValue};
use jgre_sim::{Pid, SimClock, SimTime, TraceSink, Uid};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = ParcelValue> {
    prop_oneof![
        any::<i32>().prop_map(ParcelValue::I32),
        any::<i64>().prop_map(ParcelValue::I64),
        "[a-zA-Z0-9 ]{0,40}".prop_map(ParcelValue::String),
        (0usize..100_000).prop_map(ParcelValue::Blob),
        (1u64..1_000).prop_map(|n| ParcelValue::StrongBinder(NodeId::new(n))),
    ]
}

proptest! {
    /// Whatever is written to a parcel reads back in order with the same
    /// types and values.
    #[test]
    fn parcel_roundtrip(values in proptest::collection::vec(value_strategy(), 0..40)) {
        let mut parcel = Parcel::new();
        for v in &values {
            match v {
                ParcelValue::I32(x) => { parcel.write_i32(*x); }
                ParcelValue::I64(x) => { parcel.write_i64(*x); }
                ParcelValue::String(s) => { parcel.write_string(s.clone()); }
                ParcelValue::Blob(n) => { parcel.write_blob(*n); }
                ParcelValue::StrongBinder(n) => { parcel.write_strong_binder(*n); }
            }
        }
        prop_assert_eq!(parcel.len(), values.len());
        for v in &values {
            match v {
                ParcelValue::I32(x) => prop_assert_eq!(parcel.read_i32().unwrap(), *x),
                ParcelValue::I64(x) => prop_assert_eq!(parcel.read_i64().unwrap(), *x),
                ParcelValue::String(s) => prop_assert_eq!(&parcel.read_string().unwrap(), s),
                ParcelValue::Blob(n) => prop_assert_eq!(parcel.read_blob().unwrap(), *n),
                ParcelValue::StrongBinder(n) => {
                    prop_assert_eq!(parcel.read_strong_binder().unwrap(), *n);
                }
            }
        }
        prop_assert_eq!(parcel.read_i32(), Err(BinderError::ParcelUnderflow));
        // Size model: sum of the parts, always.
        let expected: usize = values.iter().map(ParcelValue::byte_size).sum();
        prop_assert_eq!(parcel.payload_size(), expected);
        // Strong binders extracted in order.
        let binders: Vec<NodeId> = values.iter().filter_map(|v| match v {
            ParcelValue::StrongBinder(n) => Some(*n),
            _ => None,
        }).collect();
        prop_assert_eq!(parcel.strong_binders(), binders);
    }

    /// The driver's log is always time-ordered and exactly one record per
    /// accepted transaction; killed hosts reject everything afterwards.
    #[test]
    fn driver_log_is_ordered_and_complete(
        ops in proptest::collection::vec((0u8..3, 0u64..4), 1..120)
    ) {
        let clock = SimClock::new();
        let mut driver = BinderDriver::new(clock, TraceSink::disabled());
        let hosts = [Pid::new(1), Pid::new(2), Pid::new(3), Pid::new(4)];
        let nodes: Vec<NodeId> = hosts
            .iter()
            .map(|&h| driver.create_node(h, format!("svc-{h}")))
            .collect();
        let mut killed = [false; 4];
        let mut accepted = 0usize;
        for (op, which) in ops {
            let i = which as usize % nodes.len();
            match op {
                0 | 1 => {
                    let parcel = Parcel::new();
                    let result = driver.record_transaction(
                        Pid::new(100), Uid::new(10_000), nodes[i], "I", "m", &parcel);
                    if killed[i] {
                        prop_assert_eq!(result, Err(BinderError::DeadNode));
                    } else {
                        prop_assert!(result.is_ok());
                        accepted += 1;
                    }
                }
                _ => {
                    driver.kill_process(hosts[i]);
                    killed[i] = true;
                }
            }
        }
        prop_assert_eq!(driver.log().len(), accepted);
        let mut last = SimTime::ZERO;
        for record in driver.log() {
            prop_assert!(record.at >= last);
            last = record.at;
        }
    }

    /// Death links: every link registered for a node that later dies is
    /// delivered exactly once; links from dead watchers never fire.
    #[test]
    fn death_links_fire_exactly_once(
        links in proptest::collection::vec((0u64..6, 1u32..5), 0..40)
    ) {
        let clock = SimClock::new();
        let mut driver = BinderDriver::new(clock, TraceSink::disabled());
        let owner = Pid::new(9);
        let nodes: Vec<NodeId> =
            (0..6).map(|i| driver.create_node(owner, format!("cb{i}"))).collect();
        let mut expected = 0usize;
        for (node_idx, watcher) in &links {
            let node = nodes[*node_idx as usize];
            driver.link_to_death(node, Pid::new(*watcher), *node_idx).unwrap();
            expected += 1;
        }
        let notifications = driver.kill_process(owner);
        prop_assert_eq!(notifications.len(), expected);
        // A second kill is a no-op.
        prop_assert!(driver.kill_process(owner).is_empty());
        prop_assert_eq!(driver.death_link_count(), 0);
    }
}
